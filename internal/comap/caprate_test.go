package comap

import (
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/phy"
)

func dsssRates() []phy.Rate {
	return []phy.Rate{phy.RateDSSS1, phy.RateDSSS2, phy.RateDSSS5, phy.RateDSSS11}
}

func TestCapRateWithoutRatesPassesThrough(t *testing.T) {
	a := NewAgent(1, testbedModel(), loc.Static{})
	if got := a.CapRate(2, 10, 11, phy.RateDSSS11); got != phy.RateDSSS11 {
		t.Errorf("CapRate = %v", got)
	}
}

func TestCapRateUnknownPositionPassesThrough(t *testing.T) {
	a := NewAgent(1, testbedModel(), loc.Static{1: geom.Pt(0, 0)})
	a.SetRates(dsssRates())
	if got := a.CapRate(2, 10, 11, phy.RateDSSS11); got != phy.RateDSSS11 {
		t.Errorf("CapRate = %v", got)
	}
}

func TestCapRateScalesWithInterfererDistance(t *testing.T) {
	// Fixed 8 m link; the interferer moves away; the cap must climb through
	// the rate set.
	positions := loc.Static{
		1:  geom.Pt(0, 0), // me
		11: geom.Pt(8, 0), // my receiver
	}
	a := NewAgent(1, testbedModel(), positions)
	a.SetRates(dsssRates())

	prev := 0.0
	for _, d := range []float64{12, 20, 40, 120} {
		positions[2] = geom.Pt(8+d, 0) // interferer d meters beyond the receiver
		got := a.CapRate(2, 99, 11, phy.RateDSSS11)
		if got.BitsPerSec < prev {
			t.Errorf("cap decreased as interferer moved to %v m: %v", d, got)
		}
		prev = got.BitsPerSec
	}
	// Far interferer: full requested rate.
	if prev != phy.RateDSSS11.BitsPerSec {
		t.Errorf("far-interferer cap = %v bps, want 11M", prev)
	}
	// Near interferer: the slowest rate (the validated fallback).
	positions[2] = geom.Pt(10, 0)
	if got := a.CapRate(2, 99, 11, phy.RateDSSS11); got != phy.RateDSSS1 {
		t.Errorf("near-interferer cap = %v, want 1M", got)
	}
}

func TestCapRateNeverExceedsChosen(t *testing.T) {
	positions := loc.Static{
		1:  geom.Pt(0, 0),
		11: geom.Pt(8, 0),
		2:  geom.Pt(500, 0), // harmless interferer
	}
	a := NewAgent(1, testbedModel(), positions)
	a.SetRates(dsssRates())
	if got := a.CapRate(2, 99, 11, phy.RateDSSS2); got.BitsPerSec > phy.RateDSSS2.BitsPerSec {
		t.Errorf("cap %v exceeds Minstrel's choice 2M", got)
	}
}

func TestObserveLinkExpiry(t *testing.T) {
	positions := loc.Static{
		1:  geom.Pt(0, 0),
		11: geom.Pt(8, 0),
		5:  geom.Pt(100, 0),
		12: geom.Pt(108, 0),
	}
	a := NewAgent(1, testbedModel(), positions)
	a.ObserveLink(5, 12, 0)
	if !a.PersistentConcurrencyOK(11, 100*time.Millisecond) {
		t.Error("well-separated observed link should allow persistence")
	}
	// After the max age the link expires; with nothing active, persistence
	// is pointless (and disabled).
	if a.PersistentConcurrencyOK(11, 10*time.Second) {
		t.Error("expired links should disable persistence")
	}
}

func TestPersistentConcurrencyBlockedByOwnTraffic(t *testing.T) {
	positions := loc.Static{
		1:  geom.Pt(0, 0),
		11: geom.Pt(8, 0),
		5:  geom.Pt(100, 0),
	}
	a := NewAgent(1, testbedModel(), positions)
	// A link whose destination is me: someone is sending to me; I must not
	// bypass carrier sense.
	a.ObserveLink(5, 1, 0)
	if a.PersistentConcurrencyOK(11, time.Millisecond) {
		t.Error("inbound link must block persistence")
	}
	// A link transmitted BY my receiver: it cannot receive me while sending.
	b := NewAgent(1, testbedModel(), positions)
	b.ObserveLink(11, 5, 0)
	if b.PersistentConcurrencyOK(11, time.Millisecond) {
		t.Error("receiver-originated link must block persistence")
	}
}

func TestPersistentConcurrencyBlockedByUnsafeLink(t *testing.T) {
	positions := loc.Static{
		1:  geom.Pt(0, 0),
		11: geom.Pt(8, 0),
		5:  geom.Pt(12, 0), // close to my receiver: cannot coexist
		12: geom.Pt(20, 0),
	}
	a := NewAgent(1, testbedModel(), positions)
	a.ObserveLink(5, 12, 0)
	if a.PersistentConcurrencyOK(11, time.Millisecond) {
		t.Error("unsafe link must block persistence")
	}
}

var _ = frame.Broadcast

func TestRateEconomyDeniesCripplingOverlap(t *testing.T) {
	// The geometry passes the PRR validation at the lowest rate but only
	// supports 1 Mbps concurrently, while the link alone runs 11 Mbps: the
	// economy check must deny concurrency.
	positions := loc.Static{
		1:  geom.Pt(0, 0),  // me
		11: geom.Pt(8, 0),  // my receiver: alone-rate 11M
		5:  geom.Pt(31, 0), // ongoing sender: 23 m from my receiver
		12: geom.Pt(25, 0), // its receiver: a short 6 m hop
	}
	model := testbedModel()
	model.TPRR = 0.5 // permissive validation to isolate the economy check
	a := NewAgent(1, model, positions)
	if !a.Model().Coexist(positions, 5, 12, 1, 11) {
		t.Fatal("setup: PRR validation should pass at TPRR=0.5")
	}
	a.SetRates(dsssRates())
	if a.Allowed(5, 12, 11) {
		t.Error("economy check should deny a 1M-only overlap on an 11M link")
	}
	// Without a rate set the economy check is skipped and validation rules.
	b := NewAgent(1, model, positions)
	if !b.Allowed(5, 12, 11) {
		t.Error("without rates, the PRR validation alone should allow")
	}
}

func TestRateEconomyUnknownPositionDenies(t *testing.T) {
	a := NewAgent(1, testbedModel(), loc.Static{1: geom.Pt(0, 0), 11: geom.Pt(8, 0)})
	a.SetRates(dsssRates())
	if a.rateEconomical(1, 11, 99) {
		t.Error("unknown interferer position must fail the economy check")
	}
}
