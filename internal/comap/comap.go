package comap

import (
	"math"
	"sort"
	"time"

	"repro/internal/bianchi"
	"repro/internal/frame"
	"repro/internal/loc"
	"repro/internal/metrics"
	"repro/internal/phy"
	"repro/internal/trace"
)

// Link identifies a directed transmission pair.
type Link struct {
	Src frame.NodeID
	Dst frame.NodeID
}

// CoOccurrenceMap caches, per ongoing link, which of this node's receivers
// it may transmit to concurrently (paper §IV-C2). It is built lazily as the
// network operates: the first detection of a link triggers validation by
// computation, subsequent ones are table lookups. Initially empty — CO-MAP
// needs no off-line site survey.
type CoOccurrenceMap struct {
	entries map[Link]map[frame.NodeID]bool
	hits    int
	misses  int
}

// NewCoOccurrenceMap returns an empty map.
func NewCoOccurrenceMap() *CoOccurrenceMap {
	return &CoOccurrenceMap{entries: make(map[Link]map[frame.NodeID]bool)}
}

// Lookup returns the cached verdict for transmitting to myDst while ongoing
// is on the air. found is false when the pair was never validated.
func (c *CoOccurrenceMap) Lookup(ongoing Link, myDst frame.NodeID) (allowed, found bool) {
	row, ok := c.entries[ongoing]
	if !ok {
		c.misses++
		return false, false
	}
	allowed, found = row[myDst]
	if found {
		c.hits++
	} else {
		c.misses++
	}
	return allowed, found
}

// Insert records a validation verdict.
func (c *CoOccurrenceMap) Insert(ongoing Link, myDst frame.NodeID, allowed bool) {
	row, ok := c.entries[ongoing]
	if !ok {
		row = make(map[frame.NodeID]bool)
		c.entries[ongoing] = row
	}
	row[myDst] = allowed
}

// Len returns the number of ongoing-link entries.
func (c *CoOccurrenceMap) Len() int { return len(c.entries) }

// Hits and Misses expose cache efficiency for the overhead evaluation.
func (c *CoOccurrenceMap) Hits() int   { return c.hits }
func (c *CoOccurrenceMap) Misses() int { return c.misses }

// Invalidate clears the map; CO-MAP calls it when positions change (the
// paper's rapid-update property: the map is cheap to rebuild because entries
// are recomputed lazily from fresh positions).
func (c *CoOccurrenceMap) Invalidate() {
	c.entries = make(map[Link]map[frame.NodeID]bool)
}

// InvalidateNode clears only the verdicts involving id — rows whose ongoing
// link has id as an endpoint, and id's column in every remaining row. Station
// churn calls it so one node leaving or re-joining does not throw away the
// whole map. Hit/miss counters survive, like with Invalidate.
func (c *CoOccurrenceMap) InvalidateNode(id frame.NodeID) {
	for l, row := range c.entries {
		if l.Src == id || l.Dst == id {
			delete(c.entries, l)
			continue
		}
		delete(row, id)
		if len(row) == 0 {
			delete(c.entries, l)
		}
	}
}

// Agent is one node's CO-MAP instance. It implements mac.ConcurrencyPolicy
// via the co-occurrence map, mac.RateCapper via position-predicted SIR, and
// provides the hidden-terminal-aware transmission settings.
type Agent struct {
	id    frame.NodeID
	model Model
	locs  loc.Provider
	cmap  *CoOccurrenceMap
	rates []phy.Rate
	// seen records when each foreign link was last observed on the air
	// (from its discovery header); it drives persistent concurrency.
	seen map[Link]time.Duration
	// seenScratch is reused by persistentConcurrencyOK so the sorted
	// iteration over seen does not allocate per access attempt.
	seenScratch []Link

	// Location-health model (zero = trust the provider unconditionally).
	health HealthPolicy
	now    func() time.Duration

	// fixFn is the agent's provider view as a FixFunc (bound once so the
	// hot path does not allocate a method-value closure per decision).
	fixFn FixFunc

	// remote, when set, answers co-occurrence-map misses through the mapsvc
	// control plane instead of computing in-process (see SetRemote).
	remote RemoteVerdicts

	// Telemetry (nil-safe; see SetMetrics).
	mHeaders       *metrics.Counter
	mHit           *metrics.Counter
	mMiss          *metrics.Counter
	mAllow         *metrics.Counter
	mDeny          *metrics.Counter
	mPersistOK     *metrics.Counter
	mPersistNo     *metrics.Counter
	mInvalidate    *metrics.Counter
	mFallback      *metrics.Counter
	mFallbackAdapt *metrics.Counter
	mMapSize       *metrics.Gauge
	mEnvHidden     *metrics.Gauge
	mEnvCont       *metrics.Gauge

	tr *trace.Emitter
}

// NewAgent builds an agent for node id over the given analysis model and
// location provider.
func NewAgent(id frame.NodeID, model Model, locs loc.Provider) *Agent {
	a := &Agent{
		id:    id,
		model: model,
		locs:  locs,
		cmap:  NewCoOccurrenceMap(),
		seen:  make(map[Link]time.Duration),
	}
	a.fixFn = a.fixOf
	return a
}

// judgeView snapshots the agent's decision inputs as a Judge. It is a cheap
// value construction; the Judge shares the agent's rate slice and clock.
func (a *Agent) judgeView() Judge {
	return Judge{Model: a.model, Rates: a.rates, Health: a.health, Now: a.now}
}

// SetMetrics attaches a telemetry registry: discovery-header observations
// ("comap.header.observed"), co-occurrence-map hit/miss/verdict counters and
// size gauge, persistent-concurrency (ET bypass) decisions and the
// hidden-terminal environment gauges. All recording is nil-safe, so agents
// without a registry pay nothing.
func (a *Agent) SetMetrics(reg *metrics.Registry) {
	a.mHeaders = reg.Counter("comap.header.observed")
	a.mHit = reg.Counter("comap.map.hit")
	a.mMiss = reg.Counter("comap.map.miss")
	a.mAllow = reg.Counter("comap.validate.allowed")
	a.mDeny = reg.Counter("comap.validate.denied")
	a.mPersistOK = reg.Counter("comap.persistent.ok")
	a.mPersistNo = reg.Counter("comap.persistent.blocked")
	a.mInvalidate = reg.Counter("comap.map.invalidate")
	a.mFallback = reg.Counter("comap.fallback.dcf")
	a.mFallbackAdapt = reg.Counter("comap.fallback.adapt")
	a.mMapSize = reg.Gauge("comap.map.links")
	a.mEnvHidden = reg.Gauge("comap.env.hidden")
	a.mEnvCont = reg.Gauge("comap.env.contenders")
}

// SetTrace attaches a decision-event emitter: concurrency grant/deny
// verdicts ("co.grant"/"co.deny") and hidden-terminal adaptation changes
// ("co.adapt") flow into it. A nil emitter (tracing off) costs nothing.
func (a *Agent) SetTrace(em *trace.Emitter) { a.tr = em }

// emitVerdict records one concurrency-validation outcome.
func (a *Agent) emitVerdict(ongoing Link, myDst frame.NodeID, allowed bool, provenance string) {
	a.emitVerdictReq(ongoing, myDst, allowed, provenance, 0)
}

// emitVerdictReq is emitVerdict carrying the control-plane request ID that
// produced the verdict (0 for local decisions and local cache hits), so
// grant/deny events join their RPC spans.
func (a *Agent) emitVerdictReq(ongoing Link, myDst frame.NodeID, allowed bool, provenance string, req uint64) {
	if !a.tr.Enabled() {
		return
	}
	kind := trace.KindCoGrant
	if !allowed {
		kind = trace.KindCoDeny
	}
	a.tr.Emit(trace.Event{
		Kind: kind, Src: ongoing.Src, Dst: ongoing.Dst,
		OurDst: myDst, Reason: provenance, Req: req,
	})
}

// traceFallbackEvent builds the "co.fallback" record for a health-gated
// decision on the given ongoing link while we wanted to reach myDst.
func traceFallbackEvent(ongoing Link, myDst frame.NodeID, reason string) trace.Event {
	return trace.Event{
		Kind: trace.KindCoFallback, Src: ongoing.Src, Dst: ongoing.Dst,
		OurDst: myDst, Reason: reason,
	}
}

// TraceAdaptation records a hidden-terminal packet-size/CW adaptation
// decision ("co.adapt") for the link a.id→dst; the caller invokes it when
// the chosen setting changes.
func (a *Agent) TraceAdaptation(dst frame.NodeID, hidden, contenders, cw, payloadBytes int) {
	if !a.tr.Enabled() {
		return
	}
	a.tr.Emit(trace.Event{
		Kind: trace.KindCoAdapt, OurDst: dst,
		Hidden: hidden, Contenders: contenders,
		CW: cw, Payload: payloadBytes,
	})
}

// ObserveLink records that the link src→dst was seen transmitting at the
// given virtual time (the MAC decoded its discovery header).
func (a *Agent) ObserveLink(src, dst frame.NodeID, now time.Duration) {
	a.mHeaders.Inc()
	a.seen[Link{Src: src, Dst: dst}] = now
}

// DefaultLinkMaxAge is how long an observed link stays "active" for the
// persistent-concurrency decision.
const DefaultLinkMaxAge = 500 * time.Millisecond

// PersistentConcurrencyOK reports whether carrier sense can be persistently
// bypassed for transmissions to myDst: every recently observed foreign link
// must be coexistence-validated, and none of them may involve this node (we
// cannot transmit over our own inbound traffic). This mirrors the paper's
// testbed implementation, which raises the validated exposed terminal's CCA
// threshold so its transmissions proceed regardless of the ongoing one.
func (a *Agent) PersistentConcurrencyOK(myDst frame.NodeID, now time.Duration) bool {
	ok := a.persistentConcurrencyOK(myDst, now)
	if ok {
		a.mPersistOK.Inc()
	} else {
		a.mPersistNo.Inc()
	}
	return ok
}

func (a *Agent) persistentConcurrencyOK(myDst frame.NodeID, now time.Duration) bool {
	// The loop expires stale entries, may return early, and feeds the
	// hit/miss telemetry through Allowed — all order-sensitive side
	// effects, so Go's randomized map iteration would make otherwise
	// identical runs diverge. Walk the links in sorted order instead.
	links := a.seenScratch[:0]
	for l := range a.seen {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].Src != links[j].Src {
			return links[i].Src < links[j].Src
		}
		return links[i].Dst < links[j].Dst
	})
	a.seenScratch = links
	active := 0
	for _, l := range links {
		if now-a.seen[l] > DefaultLinkMaxAge {
			delete(a.seen, l)
			continue
		}
		active++
		if l.Src == a.id || l.Dst == a.id || l.Src == myDst || l.Dst == myDst {
			return false
		}
		if !a.Allowed(l.Src, l.Dst, myDst) {
			return false
		}
	}
	return active > 0
}

// ID returns the owning node's ID.
func (a *Agent) ID() frame.NodeID { return a.id }

// Map exposes the co-occurrence map (for diagnostics and tests).
func (a *Agent) Map() *CoOccurrenceMap { return a.cmap }

// Model returns the analysis model.
func (a *Agent) Model() Model { return a.model }

// concurrencyFloorFactor is the economy threshold for concurrent
// transmission: overlapping is only worthwhile when each link still supports
// at least this fraction of the bitrate it would get alone — otherwise the
// serialized CSMA share (roughly half the clean rate) is better. This
// rate-aware refinement extends the paper's eq.-(3) validation, which checks
// only the lowest-rate SIR threshold.
const concurrencyFloorFactor = 0.5

// Allowed implements mac.ConcurrencyPolicy: on detecting the ongoing
// transmission ongoingSrc→ongoingDst, consult the co-occurrence map; on a
// miss, validate by computation (eq. 3 both ways, plus the rate-economy
// check when a rate set is installed) and insert the verdict.
func (a *Agent) Allowed(ongoingSrc, ongoingDst, myDst frame.NodeID) bool {
	ongoing := Link{Src: ongoingSrc, Dst: ongoingDst}
	if a.healthEnabled() {
		// Health gate: when any involved fix is missing or past the
		// confidence bound, behave like plain DCF (no concurrent TX). The
		// verdict is NOT cached — transient ill-health must not poison the
		// persistent co-occurrence map.
		if _, _, healthy := a.fixHealth(a.id, myDst, ongoingSrc, ongoingDst); !healthy {
			a.fallbackToDCF(ongoing, myDst, "unhealthy_fix")
			return false
		}
	}
	if a.remote != nil {
		return a.remoteAllowed(ongoing, myDst)
	}
	if allowed, found := a.cmap.Lookup(ongoing, myDst); found {
		a.mHit.Inc()
		a.emitVerdict(ongoing, myDst, allowed, "cached")
		return allowed
	}
	a.mMiss.Inc()
	allowed := a.judgeView().Decide(a.fixFn, a.id, ongoing, myDst)
	a.cmap.Insert(ongoing, myDst, allowed)
	if allowed {
		a.mAllow.Inc()
	} else {
		a.mDeny.Inc()
	}
	a.mMapSize.Set(float64(a.cmap.Len()))
	a.emitVerdict(ongoing, myDst, allowed, "validated")
	return allowed
}

// rateEconomical reports whether the link src→dst, under interference from
// interferer, still supports at least concurrencyFloorFactor of the bitrate
// it would sustain alone (the computation lives on Judge so the mapsvc
// control plane runs the identical code).
func (a *Agent) rateEconomical(src, dst, interferer frame.NodeID) bool {
	return a.judgeView().rateEconomical(a.fixFn, src, dst, interferer)
}

// minWorstCaseMeters floors worst-case interferer distance so error radii
// larger than the separation cannot produce a non-positive distance.
const minWorstCaseMeters = 1.0

// OnPositionsChanged invalidates cached verdicts after location updates.
func (a *Agent) OnPositionsChanged() {
	a.cmap.Invalidate()
	a.mInvalidate.Inc()
	a.mMapSize.Set(0)
}

// OnStationChanged invalidates only the verdicts involving id — used for
// station churn, where one node leaving or re-joining must not discard the
// whole co-occurrence map. Observed-link state involving id is dropped too,
// so persistent concurrency cannot keep bypassing carrier sense based on a
// link that no longer exists.
func (a *Agent) OnStationChanged(id frame.NodeID) {
	a.cmap.InvalidateNode(id)
	for l := range a.seen {
		if l.Src == id || l.Dst == id {
			delete(a.seen, l)
		}
	}
	a.mInvalidate.Inc()
	a.mMapSize.Set(float64(a.cmap.Len()))
}

// SetRates installs the PHY rate set used by CapRate. The slice is copied.
func (a *Agent) SetRates(rates []phy.Rate) {
	a.rates = make([]phy.Rate, len(rates))
	copy(a.rates, rates)
}

// CapRate implements mac.RateCapper: while the ongoing link is on the air,
// the concurrent transmission uses the fastest rate whose SIR requirement is
// met by the position-predicted mean SIR at our receiver, with one composite
// shadowing deviation (√2·σ) of margin. CO-MAP validated the pairing at the
// lowest rate, so the slowest rate is the safe fallback ("it can transmit
// simultaneously with a higher data rate if it is located further away",
// paper §VI-A).
func (a *Agent) CapRate(ongoingSrc, _ /*ongoingDst*/, myDst frame.NodeID, chosen phy.Rate) phy.Rate {
	if len(a.rates) == 0 {
		return chosen
	}
	fme, ok1 := a.fixOf(a.id)
	frx, ok2 := a.fixOf(myDst)
	fit, ok3 := a.fixOf(ongoingSrc)
	if !ok1 || !ok2 || !ok3 {
		if a.healthEnabled() {
			// Degraded mode: a missing fix means the SIR prediction is
			// meaningless; the validated-at-lowest-rate fallback is safe.
			return a.slowestRate()
		}
		return chosen
	}
	age, _, healthy := a.fixHealth(a.id, myDst, ongoingSrc)
	if !healthy {
		return a.slowestRate()
	}
	d := fme.Pos.DistanceTo(frx.Pos)
	r := fit.Pos.DistanceTo(frx.Pos)
	if a.useWorstCaseGeometry() {
		d += fme.ErrorRadiusMeters + frx.ErrorRadiusMeters
		r -= fit.ErrorRadiusMeters + frx.ErrorRadiusMeters
		if r < minWorstCaseMeters {
			r = minWorstCaseMeters
		}
	}
	// Equal transmit powers: mean SIR is the path-loss difference.
	sir := a.model.Prop.PathLossDB(r) - a.model.Prop.PathLossDB(d)
	margin := math.Sqrt2*a.model.Prop.SigmaDB + a.stalenessMarginDB(age)

	best := a.slowestRate()
	for _, rt := range a.rates {
		if rt.MinSIRdB <= sir-margin &&
			rt.BitsPerSec > best.BitsPerSec &&
			rt.BitsPerSec <= chosen.BitsPerSec {
			best = rt
		}
	}
	return best
}

func (a *Agent) slowestRate() phy.Rate {
	slow := a.rates[0]
	for _, r := range a.rates[1:] {
		if r.BitsPerSec < slow.BitsPerSec {
			slow = r
		}
	}
	return slow
}

// CountEnvironment returns the number of potential hidden terminals and
// contending nodes of the link a.id→dst among the candidate senders. Under
// the health model, an unhealthy fix on either endpoint falls the link back
// to default transmission settings (no HT-aware adaptation: the paper's
// h=0 defaults), and candidates with unhealthy fixes are excluded rather
// than counted from garbage coordinates.
func (a *Agent) CountEnvironment(dst frame.NodeID, candidates []frame.NodeID) (hidden, contenders int) {
	if a.healthEnabled() {
		if _, _, healthy := a.fixHealth(a.id, dst); !healthy {
			a.mFallbackAdapt.Inc()
			a.mEnvHidden.Set(0)
			a.mEnvCont.Set(0)
			return 0, 0
		}
		candidates = a.healthyOnly(candidates)
	}
	hidden = len(a.model.HiddenTerminals(a.locs, a.id, dst, candidates))
	contenders = len(a.model.Contenders(a.locs, a.id, candidates))
	a.mEnvHidden.Set(float64(hidden))
	a.mEnvCont.Set(float64(contenders))
	return hidden, contenders
}

// healthyOnly filters candidates down to those with healthy fixes.
func (a *Agent) healthyOnly(ids []frame.NodeID) []frame.NodeID {
	out := make([]frame.NodeID, 0, len(ids))
	for _, id := range ids {
		if _, _, healthy := a.fixHealth(id); healthy {
			out = append(out, id)
		}
	}
	return out
}

// Adaptation returns the goodput-optimal (contention window, packet size)
// for the link a.id→dst given the candidate sender population, looked up in
// the precomputed table (paper §IV-D3).
func (a *Agent) Adaptation(table *bianchi.AdaptationTable, dst frame.NodeID, candidates []frame.NodeID) bianchi.Setting {
	h, c := a.CountEnvironment(dst, candidates)
	return table.Lookup(h, c)
}
