package comap

import (
	"errors"
	"math"
	"testing"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/radio"
)

// testbedModel mirrors the paper's testbed parameters (§VI-A).
func testbedModel() Model {
	return Model{
		Prop:           radio.NewLogNormal2400(2.9, 4),
		TxPowerDBm:     0,
		TSIRdB:         4,
		TPRR:           0.95,
		TcsDBm:         -81,
		CSMissProb:     0.9,
		SensitivityDBm: -94,
	}
}

func TestLinkPRRUnder(t *testing.T) {
	m := testbedModel()
	p := loc.Static{
		1: geom.Pt(0, 0),  // src
		2: geom.Pt(10, 0), // dst
		3: geom.Pt(50, 0), // far interferer
		4: geom.Pt(12, 0), // near interferer
	}
	far, err := m.LinkPRRUnder(p, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	near, err := m.LinkPRRUnder(p, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if far <= near {
		t.Errorf("far interferer PRR %v should exceed near %v", far, near)
	}
	if far < 0.95 {
		t.Errorf("far PRR = %v, want >= 0.95", far)
	}
	// Matches the radio package directly.
	want := m.Prop.PRR(4, 10, 40)
	if math.Abs(far-want) > 1e-12 {
		t.Errorf("PRR = %v, want %v", far, want)
	}
}

func TestLinkPRRUnderUnknownPosition(t *testing.T) {
	m := testbedModel()
	p := loc.Static{1: geom.Pt(0, 0), 2: geom.Pt(10, 0)}
	_, err := m.LinkPRRUnder(p, 1, 2, 99)
	var unknown *ErrUnknownPosition
	if !errors.As(err, &unknown) || unknown.ID != 99 {
		t.Errorf("err = %v", err)
	}
}

func TestCoexistBothDirectionsRequired(t *testing.T) {
	m := testbedModel()
	// Ongoing: C2(0,0) -> AP(10,0). My link: C11 -> AP1.
	p := loc.Static{
		1:  geom.Pt(0, 0),  // C2 (ongoing src)
		10: geom.Pt(10, 0), // AP (ongoing dst)
		2:  geom.Pt(50, 0), // C11 (me): far from AP
		11: geom.Pt(58, 0), // AP1 (my dst): far from C2
	}
	if !m.Coexist(p, 1, 10, 2, 11) {
		t.Error("well-separated links should coexist")
	}
	// Move my receiver next to the ongoing transmitter: direction 2 fails.
	p[11] = geom.Pt(3, 0)
	if m.Coexist(p, 1, 10, 2, 11) {
		t.Error("receiver near ongoing transmitter must fail validation")
	}
	p[11] = geom.Pt(58, 0)
	// Move me next to the ongoing receiver: direction 1 fails.
	p[2] = geom.Pt(12, 0)
	if m.Coexist(p, 1, 10, 2, 11) {
		t.Error("transmitter near ongoing receiver must fail validation")
	}
}

func TestCoexistUnknownPositionFails(t *testing.T) {
	m := testbedModel()
	p := loc.Static{1: geom.Pt(0, 0), 10: geom.Pt(10, 0), 2: geom.Pt(50, 0)}
	if m.Coexist(p, 1, 10, 2, 99) {
		t.Error("unknown destination position must fail validation")
	}
}

func TestHiddenTerminalDetection(t *testing.T) {
	m := testbedModel()
	// Link C1(0,0) -> AP(15,0). X at (45,0): out of C1's CS range (~39 m at
	// 90% miss), close enough to AP (30 m) to interfere. Y at (10,0): a
	// contender, not hidden.
	p := loc.Static{
		1:  geom.Pt(0, 0),
		10: geom.Pt(15, 0),
		3:  geom.Pt(45, 0),  // hidden terminal
		4:  geom.Pt(10, 0),  // contender
		5:  geom.Pt(200, 0), // too far to matter
	}
	if !m.IsHiddenTerminal(p, 1, 10, 3) {
		t.Error("X should be a hidden terminal")
	}
	if m.IsHiddenTerminal(p, 1, 10, 4) {
		t.Error("Y senses the sender; not hidden")
	}
	if m.IsHiddenTerminal(p, 1, 10, 5) {
		t.Error("distant node cannot interfere; not hidden")
	}
	// Endpoints are never their own hidden terminals.
	if m.IsHiddenTerminal(p, 1, 10, 1) || m.IsHiddenTerminal(p, 1, 10, 10) {
		t.Error("link endpoints misclassified")
	}
	hts := m.HiddenTerminals(p, 1, 10, []frame.NodeID{3, 4, 5, 1, 10})
	if len(hts) != 1 || hts[0] != 3 {
		t.Errorf("HiddenTerminals = %v", hts)
	}
}

func TestContenders(t *testing.T) {
	m := testbedModel()
	p := loc.Static{
		1: geom.Pt(0, 0),
		4: geom.Pt(10, 0), // in CS range
		3: geom.Pt(45, 0), // out of CS range
		6: geom.Pt(0, 20), // in CS range
	}
	got := m.Contenders(p, 1, []frame.NodeID{3, 4, 6, 1})
	if len(got) != 2 {
		t.Fatalf("Contenders = %v", got)
	}
	if m.IsContender(p, 1, 1) {
		t.Error("node is not its own contender")
	}
	if m.IsContender(p, 1, 99) {
		t.Error("unknown node cannot be classified as contender")
	}
}

func TestRanges(t *testing.T) {
	m := testbedModel()
	rt := m.CommunicationRange()
	// Sensitivity -94 dBm at 0 dBm tx, alpha 2.9: ~72 m.
	if rt < 50 || rt > 100 {
		t.Errorf("CommunicationRange = %v, want ~72", rt)
	}
	if m.TwoHopRange() != 2*rt {
		t.Error("TwoHopRange should be 2*Rt")
	}
}

func TestPRRTable(t *testing.T) {
	m := testbedModel()
	p := loc.Static{
		1:  geom.Pt(0, 0),
		10: geom.Pt(10, 0),
		2:  geom.Pt(50, 0),
		11: geom.Pt(58, 0),
	}
	entries := m.PRRTable(p, 2, 11, []Link{{Src: 1, Dst: 10}, {Src: 99, Dst: 10}})
	if len(entries) != 1 {
		t.Fatalf("entries = %+v (unknown positions must be skipped)", entries)
	}
	e := entries[0]
	if e.Neighbor != 1 {
		t.Errorf("Neighbor = %v", e.Neighbor)
	}
	if e.PRROfOngoing < 0.95 || e.PRROfMine < 0.95 {
		t.Errorf("PRRs = %+v, want both high for separated links", e)
	}
}

func TestErrUnknownPositionMessage(t *testing.T) {
	err := &ErrUnknownPosition{ID: 7}
	if err.Error() == "" {
		t.Error("empty error message")
	}
}
