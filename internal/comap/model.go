// Package comap implements CO-MAP, the paper's primary contribution: a
// location-driven framework that detects exposed and hidden terminals and
// improves multiple-access efficiency.
//
// The pipeline follows the paper's Fig. 5: positions (a loc.Provider feeding
// the neighbor table) → pairwise packet-reception ratios (the PRR table,
// eq. 3) → the co-occurrence map consulted at channel-access time. On the
// hidden-terminal side, the Agent counts potential hidden terminals with
// eq. 4 and picks the goodput-optimal (contention window, packet size) from
// a precomputed bianchi.AdaptationTable.
package comap

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/loc"
	"repro/internal/radio"
)

// Model bundles the radio-analysis parameters CO-MAP uses to convert
// positions into interference relations (paper §IV-B).
type Model struct {
	// Prop is the log-normal shadowing propagation model.
	Prop radio.LogNormal
	// TxPowerDBm is the (common) transmit power of all nodes.
	TxPowerDBm float64
	// TSIRdB is the SIR decoding threshold used for validation. CO-MAP uses
	// the lowest data rate's threshold: conservative, because a node that
	// qualifies as an ET at the lowest rate can always transmit concurrently
	// at some rate.
	TSIRdB float64
	// TPRR is the packet-reception-rate threshold above which concurrent
	// transmission is considered harmless (0.95 in Table I).
	TPRR float64
	// TcsDBm is the carrier-sense threshold used for hidden-terminal
	// detection.
	TcsDBm float64
	// CSMissProb is the probability cut-off above which a neighbor counts as
	// hidden (0.9 in the paper).
	CSMissProb float64
	// HTImpactPRR is the link-PRR level below which an interferer is severe
	// enough to count as a hidden terminal for the packet-size/CW
	// adaptation. Zero falls back to TPRR. Using a harsher level than TPRR
	// (e.g. 0.5) keeps the adaptation from throttling the link over
	// marginal interferers that the concurrency validation must still treat
	// conservatively.
	HTImpactPRR float64
	// SensitivityDBm is the receive sensitivity at the lowest rate, used to
	// derive the communication range for the 2-hop neighborhood bound.
	SensitivityDBm float64
}

// ErrUnknownPosition is returned when a node involved in a computation has
// no reported position.
type ErrUnknownPosition struct {
	ID frame.NodeID
}

// Error implements error.
func (e *ErrUnknownPosition) Error() string {
	return fmt.Sprintf("comap: no reported position for node %d", e.ID)
}

// LinkPRRUnder returns the PRR of the link src→dst while interferer
// transmits concurrently, from reported positions (eq. 3 with d =
// |src,dst| and r = |interferer,dst|).
func (m Model) LinkPRRUnder(p loc.Provider, src, dst, interferer frame.NodeID) (float64, error) {
	ps, ok := p.Position(src)
	if !ok {
		return 0, &ErrUnknownPosition{ID: src}
	}
	pd, ok := p.Position(dst)
	if !ok {
		return 0, &ErrUnknownPosition{ID: dst}
	}
	pi, ok := p.Position(interferer)
	if !ok {
		return 0, &ErrUnknownPosition{ID: interferer}
	}
	d := ps.DistanceTo(pd)
	r := pi.DistanceTo(pd)
	return m.Prop.PRR(m.TSIRdB, d, r), nil
}

// Coexist implements the paper's concurrency validation (§IV-C1): the links
// ongoingSrc→ongoingDst and mySrc→myDst may run concurrently iff
//
//  1. my transmission leaves the ongoing reception above T_PRR
//     (d1 = |ongoingSrc, ongoingDst|, r1 = |mySrc, ongoingDst|), and
//  2. the ongoing transmission leaves my reception above T_PRR
//     (d2 = |mySrc, myDst|, r2 = |ongoingSrc, myDst|).
//
// Unknown positions fail validation (no concurrency without location input).
func (m Model) Coexist(p loc.Provider, ongoingSrc, ongoingDst, mySrc, myDst frame.NodeID) bool {
	prr1, err := m.LinkPRRUnder(p, ongoingSrc, ongoingDst, mySrc)
	if err != nil || prr1 < m.TPRR {
		return false
	}
	prr2, err := m.LinkPRRUnder(p, mySrc, myDst, ongoingSrc)
	if err != nil || prr2 < m.TPRR {
		return false
	}
	return true
}

// IsHiddenTerminal reports whether node x is a potential hidden terminal of
// the link src→dst (§IV-D1): x can push the link's PRR below T_PRR when
// transmitting concurrently, and x misses src's signal by carrier sense with
// probability above CSMissProb.
func (m Model) IsHiddenTerminal(p loc.Provider, src, dst, x frame.NodeID) bool {
	if x == src || x == dst {
		return false
	}
	threshold := m.HTImpactPRR
	if threshold == 0 {
		threshold = m.TPRR
	}
	prr, err := m.LinkPRRUnder(p, src, dst, x)
	if err != nil || prr >= threshold {
		return false
	}
	ps, ok := p.Position(src)
	if !ok {
		return false
	}
	px, ok := p.Position(x)
	if !ok {
		return false
	}
	miss := m.Prop.ProbBelowCS(m.TcsDBm, m.TxPowerDBm, ps.DistanceTo(px))
	return miss > m.CSMissProb
}

// HiddenTerminals returns the candidates that qualify as hidden terminals of
// src→dst.
func (m Model) HiddenTerminals(p loc.Provider, src, dst frame.NodeID, candidates []frame.NodeID) []frame.NodeID {
	var out []frame.NodeID
	for _, x := range candidates {
		if m.IsHiddenTerminal(p, src, dst, x) {
			out = append(out, x)
		}
	}
	return out
}

// IsContender reports whether node x shares src's channel: x likely senses
// src's transmissions by carrier sense (the complement of the
// hidden-terminal CS condition).
func (m Model) IsContender(p loc.Provider, src, x frame.NodeID) bool {
	if x == src {
		return false
	}
	ps, ok := p.Position(src)
	if !ok {
		return false
	}
	px, ok := p.Position(x)
	if !ok {
		return false
	}
	miss := m.Prop.ProbBelowCS(m.TcsDBm, m.TxPowerDBm, ps.DistanceTo(px))
	return miss <= m.CSMissProb
}

// Contenders returns the candidates that contend with src on the channel.
func (m Model) Contenders(p loc.Provider, src frame.NodeID, candidates []frame.NodeID) []frame.NodeID {
	var out []frame.NodeID
	for _, x := range candidates {
		if m.IsContender(p, src, x) {
			out = append(out, x)
		}
	}
	return out
}

// CommunicationRange is R_t: the mean distance at which the signal reaches
// the lowest rate's sensitivity.
func (m Model) CommunicationRange() float64 {
	return m.Prop.MeanRangeFor(m.TxPowerDBm, m.SensitivityDBm)
}

// TwoHopRange bounds the distance to any relevant ET or HT: the paper shows
// the maximum distance between a node and its hidden or exposed terminals is
// 2·R_t (§V, overhead discussion).
func (m Model) TwoHopRange() float64 { return 2 * m.CommunicationRange() }

// PRRTableEntry is one row of the PRR table of Fig. 5: the mutual PRRs of
// this node's link and one neighbor's transmission.
type PRRTableEntry struct {
	Neighbor frame.NodeID
	// PRROfOngoing is the PRR of the neighbor's reception if we transmit.
	PRROfOngoing float64
	// PRROfMine is the PRR of our reception if the neighbor transmits.
	PRROfMine float64
}

// PRRTable computes the node's PRR table against each (neighborSrc,
// neighborDst) link for our link me→myDst. Entries with unknown positions
// are skipped.
func (m Model) PRRTable(p loc.Provider, me, myDst frame.NodeID, links []Link) []PRRTableEntry {
	out := make([]PRRTableEntry, 0, len(links))
	for _, l := range links {
		prr1, err1 := m.LinkPRRUnder(p, l.Src, l.Dst, me)
		prr2, err2 := m.LinkPRRUnder(p, me, myDst, l.Src)
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, PRRTableEntry{Neighbor: l.Src, PRROfOngoing: prr1, PRROfMine: prr2})
	}
	return out
}
