package comap

import (
	"math"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/phy"
)

// FixFunc resolves a node's last committed fix; the bool is false when the
// node has none. Both the agent's provider view and the mapsvc control
// plane's fix table are exposed through it, so verdicts computed on either
// side of the client/server boundary run the identical code path — the
// remote service stays a byte-exact oracle for the in-process computation.
type FixFunc func(id frame.NodeID) (loc.Fix, bool)

// fixView adapts a FixFunc to loc.Provider for the Model's position-only
// geometry checks.
type fixView struct{ f FixFunc }

func (v fixView) Position(id frame.NodeID) (geom.Point, bool) {
	fx, ok := v.f(id)
	return fx.Pos, ok
}

// Judge is the pure ET/HT verdict calculator extracted from Agent: the
// paper's eq.-(3) coexistence validation, the rate-economy refinement, and
// the location-health gating, all over an abstract fix table. It holds no
// mutable state — Agent wraps one around its own fields per decision, and
// mapsvc.Service evaluates the same Judge against its ingested fixes.
type Judge struct {
	Model  Model
	Rates  []phy.Rate
	Health HealthPolicy
	// Now supplies virtual time for fix-age computation; nil disables
	// health gating exactly like Agent.SetHealth with a nil clock.
	Now func() time.Duration
}

func (j Judge) healthEnabled() bool { return j.Health.Enabled() && j.Now != nil }

// useWorstCase reports whether link geometry is evaluated at worst-case
// distances derived from the fixes' reported error radii.
func (j Judge) useWorstCase() bool { return j.healthEnabled() && j.Health.UseErrorRadius }

// FixHealth summarises the health of the given peers' fixes: oldest age and
// largest error radius. healthy is false when any peer has no fix or a fix
// older than the confidence bound; disabled gating always reports healthy.
func (j Judge) FixHealth(fixes FixFunc, ids ...frame.NodeID) (maxAge time.Duration, maxErr float64, healthy bool) {
	if !j.healthEnabled() {
		return 0, 0, true
	}
	now := j.Now()
	healthy = true
	for _, id := range ids {
		fix, ok := fixes(id)
		if !ok {
			return maxAge, maxErr, false
		}
		var age time.Duration
		if fix.ReportedAt >= 0 {
			age = now - fix.ReportedAt
			if age < 0 {
				age = 0
			}
		}
		if age > maxAge {
			maxAge = age
		}
		if fix.ErrorRadiusMeters > maxErr {
			maxErr = fix.ErrorRadiusMeters
		}
		if age > j.Health.MaxFixAge {
			healthy = false
		}
	}
	return maxAge, maxErr, healthy
}

// StalenessMarginDB converts a fix age into extra SIR margin.
func (j Judge) StalenessMarginDB(age time.Duration) float64 {
	if !j.healthEnabled() {
		return 0
	}
	return j.Health.StalenessMarginDBPerSec * age.Seconds()
}

// Decide computes the full concurrency verdict for observer hearing
// ongoing.Src→ongoing.Dst while wanting to send to myDst: eq. 3 both ways
// plus the rate-economy check when a rate set is installed. It is the exact
// computation Agent.Allowed runs on a co-occurrence-map miss.
func (j Judge) Decide(fixes FixFunc, observer frame.NodeID, ongoing Link, myDst frame.NodeID) bool {
	return j.Model.Coexist(fixView{fixes}, ongoing.Src, ongoing.Dst, observer, myDst) &&
		j.rateEconomical(fixes, observer, myDst, ongoing.Src) &&
		j.rateEconomical(fixes, ongoing.Src, ongoing.Dst, observer)
}

// rateEconomical reports whether the link src→dst, under interference from
// interferer, still supports at least concurrencyFloorFactor of the bitrate
// it would sustain alone. With no rate set installed the check is skipped.
func (j Judge) rateEconomical(fixes FixFunc, src, dst, interferer frame.NodeID) bool {
	if len(j.Rates) == 0 {
		return true
	}
	fs, ok1 := fixes(src)
	fd, ok2 := fixes(dst)
	fi, ok3 := fixes(interferer)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	d := fs.Pos.DistanceTo(fd.Pos)
	r := fi.Pos.DistanceTo(fd.Pos)
	if j.useWorstCase() {
		// Worst case within the reported error radii: own link longer,
		// interferer closer to the receiver.
		d += fs.ErrorRadiusMeters + fd.ErrorRadiusMeters
		r -= fi.ErrorRadiusMeters + fd.ErrorRadiusMeters
		if r < minWorstCaseMeters {
			r = minWorstCaseMeters
		}
	}
	age, _, healthy := j.FixHealth(fixes, src, dst, interferer)
	if !healthy {
		return false
	}
	sir := j.Model.Prop.PathLossDB(r) - j.Model.Prop.PathLossDB(d)
	margin := math.Sqrt2*j.Model.Prop.SigmaDB + j.StalenessMarginDB(age)
	capped, ok := j.fastestForSIR(sir - margin)
	if !ok {
		return false
	}
	alone := j.fastestAlone(d)
	return capped.BitsPerSec >= concurrencyFloorFactor*alone.BitsPerSec
}

// fastestForSIR returns the fastest rate decodable at the given SIR margin.
func (j Judge) fastestForSIR(sirDB float64) (phy.Rate, bool) {
	var best phy.Rate
	for _, r := range j.Rates {
		if r.MinSIRdB <= sirDB && r.BitsPerSec > best.BitsPerSec {
			best = r
		}
	}
	return best, !best.IsZero()
}

// fastestAlone returns the fastest rate the link supports without
// interference, one shadowing deviation below the mean received power.
func (j Judge) fastestAlone(d float64) phy.Rate {
	rx := j.Model.TxPowerDBm - j.Model.Prop.PathLossDB(d) - j.Model.Prop.SigmaDB
	best := j.slowestRate()
	for _, r := range j.Rates {
		if r.SensitivityDBm <= rx && r.BitsPerSec > best.BitsPerSec {
			best = r
		}
	}
	return best
}

func (j Judge) slowestRate() phy.Rate {
	slow := j.Rates[0]
	for _, r := range j.Rates[1:] {
		if r.BitsPerSec < slow.BitsPerSec {
			slow = r
		}
	}
	return slow
}

// DecideWide is the degraded-tier verdict for the ladder's stale and coarse
// rungs: eq. 3 both ways at worst-case geometry inflated by widenMeters on
// every error radius, with no rate-economy refinement — the degraded rungs
// forgo rate optimization and only need to know the pairing cannot corrupt
// frames. ok is false when any involved node has no fix at all.
func (j Judge) DecideWide(fixes FixFunc, observer frame.NodeID, ongoing Link, myDst frame.NodeID, widenMeters float64) (allowed, ok bool) {
	prr1, ok1 := j.prrWide(fixes, ongoing.Src, ongoing.Dst, observer, widenMeters)
	prr2, ok2 := j.prrWide(fixes, observer, myDst, ongoing.Src, widenMeters)
	if !ok1 || !ok2 {
		return false, false
	}
	return prr1 >= j.Model.TPRR && prr2 >= j.Model.TPRR, true
}

// prrWide predicts link PRR under interference at worst-case distances: own
// link longer, interferer closer to the receiver, each inflated by the
// reported error radii plus the extra widening margin.
func (j Judge) prrWide(fixes FixFunc, src, dst, interferer frame.NodeID, widen float64) (float64, bool) {
	fs, ok1 := fixes(src)
	fd, ok2 := fixes(dst)
	fi, ok3 := fixes(interferer)
	if !ok1 || !ok2 || !ok3 {
		return 0, false
	}
	d := fs.Pos.DistanceTo(fd.Pos) + fs.ErrorRadiusMeters + fd.ErrorRadiusMeters + widen
	r := fi.Pos.DistanceTo(fd.Pos) - fi.ErrorRadiusMeters - fd.ErrorRadiusMeters - widen
	if r < minWorstCaseMeters {
		r = minWorstCaseMeters
	}
	return j.Model.Prop.PRR(j.Model.TSIRdB, d, r), true
}
