package comap

import (
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/metrics"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fixTable is a FixProvider test double with explicit per-node fixes.
type fixTable map[frame.NodeID]loc.Fix

func (f fixTable) Position(id frame.NodeID) (geom.Point, bool) {
	fx, ok := f[id]
	return fx.Pos, ok
}

func (f fixTable) Fix(id frame.NodeID) (loc.Fix, bool) {
	fx, ok := f[id]
	return fx, ok
}

// separatedFixes is the well-separated two-link topology from
// TestAgentAllowedCachesVerdicts, every fix fresh at time at.
func separatedFixes(at time.Duration) fixTable {
	return fixTable{
		1:  {Pos: geom.Pt(0, 0), ReportedAt: at},
		10: {Pos: geom.Pt(10, 0), ReportedAt: at},
		2:  {Pos: geom.Pt(50, 0), ReportedAt: at},
		11: {Pos: geom.Pt(58, 0), ReportedAt: at},
	}
}

func healthAgent(fixes fixTable, now func() time.Duration) *Agent {
	a := NewAgent(2, testbedModel(), fixes)
	a.SetHealth(HealthPolicy{MaxFixAge: time.Second, StalenessMarginDBPerSec: 1}, now)
	return a
}

func TestHealthGateStaleFixFallsBackToDCF(t *testing.T) {
	now := 10 * time.Second
	fixes := separatedFixes(now)
	fixes[1] = loc.Fix{Pos: geom.Pt(0, 0), ReportedAt: 0} // 10 s old, bound 1 s
	a := healthAgent(fixes, func() time.Duration { return now })
	reg := metrics.NewRegistry()
	a.SetMetrics(reg)
	buf := &trace.Buffer{}
	a.SetTrace(trace.NewEmitter(sim.New(1), 2, buf))

	if a.Allowed(1, 10, 11) {
		t.Error("stale fix must deny concurrency")
	}
	if a.Map().Len() != 0 {
		t.Error("health-gated denial must not be cached")
	}
	if reg.Counter("comap.fallback.dcf").Value() != 1 {
		t.Errorf("fallback.dcf = %d", reg.Counter("comap.fallback.dcf").Value())
	}
	found := false
	for _, e := range buf.Events {
		if e.Kind == trace.KindCoFallback && e.Reason == "unhealthy_fix" {
			found = true
		}
	}
	if !found {
		t.Error("no co.fallback trace event")
	}

	// Fresh fix: the same decision is allowed and cached again.
	fixes[1] = loc.Fix{Pos: geom.Pt(0, 0), ReportedAt: now}
	if !a.Allowed(1, 10, 11) {
		t.Error("fresh fixes should allow the separated links")
	}
	if a.Map().Len() != 1 {
		t.Error("healthy verdict should be cached")
	}
}

func TestHealthGateMissingFixFallsBackToDCF(t *testing.T) {
	fixes := separatedFixes(0)
	delete(fixes, 10) // churned-out peer: no fix at all
	a := healthAgent(fixes, func() time.Duration { return 0 })
	if a.Allowed(1, 10, 11) {
		t.Error("missing fix must deny concurrency")
	}
	if a.Map().Len() != 0 {
		t.Error("health-gated denial must not be cached")
	}
}

// posOnly is a plain loc.Provider (no fix metadata).
type posOnly fixTable

func (p posOnly) Position(id frame.NodeID) (geom.Point, bool) {
	return fixTable(p).Position(id)
}

// TestOracleProviderNeverGoesStale: a provider without fix metadata must
// read as always fresh. Regression: such fixes once defaulted to
// ReportedAt 0, so with a live clock every position looked sim-time old and
// the health gate tripped permanently a few seconds into any run.
func TestOracleProviderNeverGoesStale(t *testing.T) {
	a := NewAgent(2, testbedModel(), posOnly(separatedFixes(0)))
	a.SetHealth(HealthPolicy{MaxFixAge: time.Second}, func() time.Duration { return time.Hour })
	if !a.Allowed(1, 10, 11) {
		t.Error("metadata-less provider tripped the health gate on clock advance")
	}
}

func TestHealthDisabledKeepsOracleBehavior(t *testing.T) {
	// Ancient fixes, but no health policy: the agent trusts them.
	a := NewAgent(2, testbedModel(), separatedFixes(0))
	a.now = func() time.Duration { return time.Hour }
	if !a.Allowed(1, 10, 11) {
		t.Error("without a policy, fix age must not matter")
	}
}

func TestStalenessMarginVetoesMarginalPairing(t *testing.T) {
	// A pairing that is allowed with fresh fixes flips to denied when the
	// fixes are stale enough (still under the hard age bound) because the
	// staleness margin inflates the SIR requirement.
	base := func(age time.Duration) bool {
		now := age + 10*time.Second // keep ReportedAt non-negative (negative = oracle)
		fixes := separatedFixes(now - age)
		a := NewAgent(2, testbedModel(), fixes)
		a.SetRates(dsssRates())
		a.SetHealth(HealthPolicy{MaxFixAge: time.Minute, StalenessMarginDBPerSec: 2}, func() time.Duration { return now })
		return a.Allowed(1, 10, 11)
	}
	if !base(0) {
		t.Fatal("fresh fixes should allow the separated links")
	}
	if base(50 * time.Second) {
		t.Error("100 dB of staleness margin should veto any pairing")
	}
}

func TestCapRateStaleFixFallsBackToSlowestRate(t *testing.T) {
	now := 10 * time.Second
	fixes := fixTable{
		1:  {Pos: geom.Pt(0, 0), ReportedAt: now},
		11: {Pos: geom.Pt(8, 0), ReportedAt: now},
		2:  {Pos: geom.Pt(208, 0), ReportedAt: 0}, // far interferer, stale fix
	}
	a := NewAgent(1, testbedModel(), fixes)
	a.SetRates(dsssRates())
	a.SetHealth(HealthPolicy{MaxFixAge: time.Second}, func() time.Duration { return now })
	if got := a.CapRate(2, 99, 11, phy.RateDSSS11); got != phy.RateDSSS1 {
		t.Errorf("stale interferer fix capped at %v, want the slowest rate", got)
	}
	fixes[2] = loc.Fix{Pos: geom.Pt(208, 0), ReportedAt: now}
	if got := a.CapRate(2, 99, 11, phy.RateDSSS11); got != phy.RateDSSS11 {
		t.Errorf("fresh far interferer capped at %v, want 11M", got)
	}
}

func TestCapRateErrorRadiusShrinksCap(t *testing.T) {
	// Same geometry; a large reported error radius on the interferer pulls
	// the worst-case interferer distance in and must lower the cap.
	capWith := func(errRadius float64) phy.Rate {
		fixes := fixTable{
			1:  {Pos: geom.Pt(0, 0)},
			11: {Pos: geom.Pt(8, 0)},
			2:  {Pos: geom.Pt(108, 0), ErrorRadiusMeters: errRadius},
		}
		a := NewAgent(1, testbedModel(), fixes)
		a.SetRates(dsssRates())
		a.SetHealth(HealthPolicy{MaxFixAge: time.Minute, UseErrorRadius: true}, func() time.Duration { return 0 })
		return a.CapRate(2, 99, 11, phy.RateDSSS11)
	}
	if precise, fuzzy := capWith(0), capWith(80); fuzzy.BitsPerSec >= precise.BitsPerSec {
		t.Errorf("cap with 80 m error radius (%v) not below precise cap (%v)", fuzzy, precise)
	}
}

func TestCountEnvironmentFallsBackOnUnhealthyLink(t *testing.T) {
	now := 10 * time.Second
	fixes := fixTable{
		1: {Pos: geom.Pt(0, 0), ReportedAt: 0}, // own fix stale
		2: {Pos: geom.Pt(10, 0), ReportedAt: now},
		3: {Pos: geom.Pt(200, 0), ReportedAt: now},
	}
	a := NewAgent(1, testbedModel(), fixes)
	a.SetHealth(HealthPolicy{MaxFixAge: time.Second}, func() time.Duration { return now })
	reg := metrics.NewRegistry()
	a.SetMetrics(reg)
	h, c := a.CountEnvironment(2, []frame.NodeID{3})
	if h != 0 || c != 0 {
		t.Errorf("unhealthy link environment = (%d,%d), want defaults (0,0)", h, c)
	}
	if reg.Counter("comap.fallback.adapt").Value() != 1 {
		t.Errorf("fallback.adapt = %d", reg.Counter("comap.fallback.adapt").Value())
	}
}

// TestChurnRejoinWithinTTLRecomputesVerdict races per-node invalidation
// against churn: a peer leaves and rejoins at a new position within one fix
// TTL, so every fix involved still passes the health gate's age bound. Only
// the OnStationChanged invalidation stands between the agent and serving the
// pre-churn cached verdict — which the new geometry has made wrong.
func TestChurnRejoinWithinTTLRecomputesVerdict(t *testing.T) {
	now := 10 * time.Second
	fixes := separatedFixes(now)
	a := healthAgent(fixes, func() time.Duration { return now })
	reg := metrics.NewRegistry()
	a.SetMetrics(reg)

	if !a.Allowed(1, 10, 11) {
		t.Fatal("separated links should be allowed")
	}
	if a.Map().Len() != 1 {
		t.Fatal("verdict not cached")
	}

	// Node 10 leaves the network...
	delete(fixes, 10)
	a.OnStationChanged(10)
	if a.Map().Len() != 0 {
		t.Fatal("cached verdicts involving the departed node survived")
	}

	// ...and rejoins 200 ms later — well inside the 1 s MaxFixAge — right
	// next to the observer, so the ongoing link's receiver would now be
	// crushed by the observer's transmission.
	now += 200 * time.Millisecond
	fixes[10] = loc.Fix{Pos: geom.Pt(51, 0), ReportedAt: now}
	a.OnStationChanged(10)

	if a.Allowed(1, 10, 11) {
		t.Error("pre-churn cached allow served after rejoin: invalidation lost the race")
	}
	if hits, misses := a.Map().Hits(), a.Map().Misses(); hits != 0 || misses != 2 {
		t.Errorf("map hits/misses = %d/%d, want 0/2 (both decisions recomputed)", hits, misses)
	}
	if got := reg.Counter("comap.map.invalidate").Value(); got != 2 {
		t.Errorf("comap.map.invalidate = %d, want 2 (leave and rejoin)", got)
	}
}

func TestInvalidateNode(t *testing.T) {
	c := NewCoOccurrenceMap()
	c.Insert(Link{Src: 1, Dst: 2}, 5, true)  // survives
	c.Insert(Link{Src: 1, Dst: 2}, 3, true)  // column cleared
	c.Insert(Link{Src: 3, Dst: 4}, 5, false) // row cleared (src)
	c.Insert(Link{Src: 4, Dst: 3}, 5, true)  // row cleared (dst)
	c.Lookup(Link{Src: 1, Dst: 2}, 5)        // 1 hit
	c.Lookup(Link{Src: 9, Dst: 9}, 5)        // 1 miss
	hits, misses := c.Hits(), c.Misses()

	c.InvalidateNode(3)
	if _, found := c.Lookup(Link{Src: 3, Dst: 4}, 5); found {
		t.Error("row with node as src survived InvalidateNode")
	}
	if _, found := c.Lookup(Link{Src: 4, Dst: 3}, 5); found {
		t.Error("row with node as dst survived InvalidateNode")
	}
	if _, found := c.Lookup(Link{Src: 1, Dst: 2}, 3); found {
		t.Error("node's column in an unrelated row survived InvalidateNode")
	}
	if allowed, found := c.Lookup(Link{Src: 1, Dst: 2}, 5); !found || !allowed {
		t.Error("unrelated verdict lost by InvalidateNode")
	}
	// Counters keep counting across the invalidation (the lookups above
	// added 3 misses and 1 hit).
	if c.Hits() != hits+1 || c.Misses() != misses+3 {
		t.Errorf("counters after InvalidateNode = %d/%d, want %d/%d",
			c.Hits(), c.Misses(), hits+1, misses+3)
	}
}

func TestInvalidateNodeDropsEmptiedRows(t *testing.T) {
	c := NewCoOccurrenceMap()
	c.Insert(Link{Src: 1, Dst: 2}, 3, true)
	c.InvalidateNode(3)
	if c.Len() != 0 {
		t.Errorf("Len = %d after the only column was cleared", c.Len())
	}
}

func TestInvalidateCountersSurvive(t *testing.T) {
	// Satellite check: Invalidate clears entries but hit/miss accounting is
	// cumulative across the run.
	c := NewCoOccurrenceMap()
	c.Insert(Link{Src: 1, Dst: 2}, 3, true)
	c.Lookup(Link{Src: 1, Dst: 2}, 3) // hit
	c.Lookup(Link{Src: 1, Dst: 2}, 9) // miss
	c.Invalidate()
	if c.Len() != 0 {
		t.Error("Invalidate should clear entries")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d after Invalidate, want 1/1", c.Hits(), c.Misses())
	}
	c.Lookup(Link{Src: 1, Dst: 2}, 3) // miss on the cleared map
	if c.Hits() != 1 || c.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d, counters must keep counting", c.Hits(), c.Misses())
	}
}

func TestOnStationChangedPrunesSeenLinks(t *testing.T) {
	a := NewAgent(2, testbedModel(), separatedFixes(0))
	a.ObserveLink(5, 6, 0)
	a.ObserveLink(7, 8, 0)
	a.Map().Insert(Link{Src: 5, Dst: 6}, 11, true)
	a.Map().Insert(Link{Src: 7, Dst: 8}, 11, true)
	a.OnStationChanged(5)
	if _, ok := a.seen[Link{Src: 5, Dst: 6}]; ok {
		t.Error("seen link involving the churned node survived")
	}
	if _, ok := a.seen[Link{Src: 7, Dst: 8}]; !ok {
		t.Error("unrelated seen link was dropped")
	}
	if _, found := a.Map().Lookup(Link{Src: 5, Dst: 6}, 11); found {
		t.Error("map row involving the churned node survived")
	}
	if _, found := a.Map().Lookup(Link{Src: 7, Dst: 8}, 11); !found {
		t.Error("unrelated map row was dropped")
	}
}
