package comap

import (
	"time"

	"repro/internal/arq"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
)

// pipelineDepth is how many frames the endpoint keeps in the MAC queue so
// the selective-repeat window stays busy without hoarding the queue.
const pipelineDepth = 2

// creditInterval is the CBR token-refill period.
const creditInterval = 10 * time.Millisecond

// stream is one outgoing selective-repeat flow.
type stream struct {
	dst       frame.NodeID
	send      *arq.Sender
	payloadFn func() int
	// credit is the CBR byte bucket; nil means saturated.
	credit     *float64
	creditRate float64 // bytes per second
	creditEv   sim.Handle
	active     bool
}

// Endpoint is CO-MAP's link layer on one station: it pumps outgoing
// selective-repeat streams into the MAC (paper §IV-C4) and
// deduplicates/acknowledges incoming streams with bitmap SR-ACKs. An
// endpoint can carry several streams (APs serve every associated client) and
// be sender and receiver at once.
type Endpoint struct {
	eng    *sim.Engine
	m      *mac.MAC
	window int

	streams []*stream
	rr      int // round-robin cursor over streams

	// receiver side
	recv      map[frame.NodeID]*arq.Receiver
	delivered stats.GoodputMeter
	bySrc     map[frame.NodeID]*stats.GoodputMeter
	onDeliver func(f frame.Frame)
	onControl func(f frame.Frame, rssiDBm float64)

	metrics *metrics.Registry
}

// NewEndpoint wires an endpoint onto the MAC (installing its hooks) with the
// given selective-repeat window size (0 = arq.DefaultWindow).
func NewEndpoint(eng *sim.Engine, m *mac.MAC, window int) *Endpoint {
	e := &Endpoint{
		eng:    eng,
		m:      m,
		window: window,
		recv:   make(map[frame.NodeID]*arq.Receiver),
		bySrc:  make(map[frame.NodeID]*stats.GoodputMeter),
	}
	m.SetHooks(mac.Hooks{
		OnSendComplete: func(frame.Frame, bool) { e.pump() },
		OnReceive:      e.onReceive,
		OnAckInfo:      e.onAckInfo,
		MakeAck:        e.makeAck,
		OnControl: func(f frame.Frame, rssi float64) {
			if e.onControl != nil {
				e.onControl(f, rssi)
			}
		},
	})
	return e
}

// OnControl registers an observer for decoded control frames (discovery
// headers, location beacons); the CO-MAP agent uses it to track active
// links.
func (e *Endpoint) OnControl(fn func(f frame.Frame, rssiDBm float64)) { e.onControl = fn }

// SetMetrics attaches a telemetry registry: the ARQ senders of streams
// started afterwards record their window occupancy and delivery latencies
// into it (see arq.Sender.Instrument). Call before wiring traffic.
func (e *Endpoint) SetMetrics(reg *metrics.Registry) { e.metrics = reg }

// instrument wires the endpoint's registry into a freshly created sender.
func (e *Endpoint) instrument(s *arq.Sender) *arq.Sender {
	if e.metrics != nil {
		s.Instrument(e.metrics, e.eng.Now)
	}
	return s
}

// MAC returns the underlying MAC.
func (e *Endpoint) MAC() *mac.MAC { return e.m }

// Sender exposes the ARQ sender state of the stream towards dst; with no
// argument streams, it returns the first stream's sender (nil if none).
func (e *Endpoint) Sender() *arq.Sender {
	if len(e.streams) == 0 {
		return nil
	}
	return e.streams[0].send
}

// SenderTo returns the ARQ sender for the stream towards dst, or nil.
func (e *Endpoint) SenderTo(dst frame.NodeID) *arq.Sender {
	for _, s := range e.streams {
		if s.dst == dst {
			return s.send
		}
	}
	return nil
}

// Delivered returns the unique-payload meter of the receive side. Duplicate
// retransmissions are not counted, so this is true goodput.
func (e *Endpoint) Delivered() *stats.GoodputMeter { return &e.delivered }

// DeliveredFrom returns the per-source unique-payload meter (created on
// first use).
func (e *Endpoint) DeliveredFrom(src frame.NodeID) *stats.GoodputMeter {
	g, ok := e.bySrc[src]
	if !ok {
		g = &stats.GoodputMeter{}
		e.bySrc[src] = g
	}
	return g
}

// OnDeliver registers a callback invoked for each newly delivered (unique)
// data frame.
func (e *Endpoint) OnDeliver(fn func(f frame.Frame)) { e.onDeliver = fn }

// StartStream begins a saturated stream towards dst. payloadFn is consulted
// for every newly minted frame, so CO-MAP's packet-size adaptation takes
// effect immediately. Multiple streams to distinct destinations share the
// MAC round-robin.
func (e *Endpoint) StartStream(dst frame.NodeID, payloadFn func() int) {
	e.streams = append(e.streams, &stream{
		dst:       dst,
		send:      e.instrument(arq.NewSender(e.window, 0)),
		payloadFn: payloadFn,
		active:    true,
	})
	e.pump()
}

// StartCBRStream begins a rate-limited stream towards dst offering
// bitsPerSec of new application payload (retransmissions ride for free: they
// consume MAC airtime but no new application data).
func (e *Endpoint) StartCBRStream(dst frame.NodeID, payloadFn func() int, bitsPerSec float64) {
	credit := 0.0
	s := &stream{
		dst:        dst,
		send:       e.instrument(arq.NewSender(e.window, 0)),
		payloadFn:  payloadFn,
		credit:     &credit,
		creditRate: bitsPerSec / 8,
		active:     true,
	}
	e.streams = append(e.streams, s)
	e.scheduleCredit(s)
	e.pump()
}

func (e *Endpoint) scheduleCredit(s *stream) {
	s.creditEv = e.eng.AfterTagged(creditInterval, sim.TagComap, int32(e.m.ID()), func() {
		*s.credit += s.creditRate * creditInterval.Seconds()
		// Cap the bucket at one second of traffic to bound bursts.
		if bucketCap := s.creditRate; *s.credit > bucketCap {
			*s.credit = bucketCap
		}
		e.pump()
		e.scheduleCredit(s)
	})
}

// StopStream halts all outgoing streams (pending frames drain normally).
func (e *Endpoint) StopStream() {
	for _, s := range e.streams {
		e.pauseStream(s)
	}
}

func (e *Endpoint) pauseStream(s *stream) {
	s.active = false
	if s.creditEv.Active() {
		e.eng.Cancel(s.creditEv)
		s.creditEv = sim.Handle{}
	}
}

func (e *Endpoint) resumeStream(s *stream) (resumed bool) {
	if s.active {
		return false
	}
	s.active = true
	if s.credit != nil && !s.creditEv.Active() {
		e.scheduleCredit(s)
	}
	return true
}

// PauseStreams suspends all outgoing streams, keeping their ARQ state so
// ResumeStreams can continue them — the station-churn "leave" transition.
func (e *Endpoint) PauseStreams() { e.StopStream() }

// ResumeStreams reactivates every paused stream (the churn "re-join").
func (e *Endpoint) ResumeStreams() {
	resumed := false
	for _, s := range e.streams {
		resumed = e.resumeStream(s) || resumed
	}
	if resumed {
		e.pump()
	}
}

// PauseStreamsTo suspends only the streams towards dst — the sender-side
// half of dst's churn: a serving station stops feeding a departed peer.
func (e *Endpoint) PauseStreamsTo(dst frame.NodeID) {
	for _, s := range e.streams {
		if s.dst == dst {
			e.pauseStream(s)
		}
	}
}

// ResumeStreamsTo reactivates the streams towards dst after it re-joined.
func (e *Endpoint) ResumeStreamsTo(dst frame.NodeID) {
	resumed := false
	for _, s := range e.streams {
		if s.dst == dst {
			resumed = e.resumeStream(s) || resumed
		}
	}
	if resumed {
		e.pump()
	}
}

// pump keeps the MAC queue primed with frames, round-robining across the
// active streams.
func (e *Endpoint) pump() {
	if len(e.streams) == 0 {
		return
	}
	for e.m.QueueLen() < pipelineDepth {
		f, ok := e.nextFrame()
		if !ok {
			return
		}
		if err := e.m.Enqueue(f); err != nil {
			return
		}
	}
}

// nextFrame picks the next frame across streams, starting at the round-robin
// cursor.
func (e *Endpoint) nextFrame() (frame.Frame, bool) {
	for i := 0; i < len(e.streams); i++ {
		s := e.streams[(e.rr+i)%len(e.streams)]
		if !s.active {
			continue
		}
		if f, ok := e.frameFrom(s); ok {
			e.rr = (e.rr + i + 1) % len(e.streams)
			return f, true
		}
	}
	return frame.Frame{}, false
}

func (e *Endpoint) frameFrom(s *stream) (frame.Frame, bool) {
	payload := s.payloadFn()
	if s.credit == nil {
		seq, pl, retry := s.send.Next(payload)
		return frame.Frame{Kind: frame.Data, Dst: s.dst, Seq: seq, PayloadBytes: pl, Retry: retry}, true
	}
	// CBR: mint new frames only when credit allows; retransmit otherwise.
	if *s.credit >= float64(payload) && s.send.CanSendNew() {
		if seq, ok := s.send.NextNew(payload); ok {
			*s.credit -= float64(payload)
			return frame.Frame{Kind: frame.Data, Dst: s.dst, Seq: seq, PayloadBytes: payload}, true
		}
	}
	if seq, pl, ok := s.send.NextRetransmit(); ok {
		return frame.Frame{Kind: frame.Data, Dst: s.dst, Seq: seq, PayloadBytes: pl, Retry: true}, true
	}
	return frame.Frame{}, false
}

func (e *Endpoint) onReceive(f frame.Frame, _ float64) {
	r, ok := e.recv[f.Src]
	if !ok {
		r = arq.NewReceiver()
		e.recv[f.Src] = r
	}
	if r.OnData(f.Seq) {
		e.delivered.AddPayload(f.PayloadBytes)
		e.DeliveredFrom(f.Src).AddPayload(f.PayloadBytes)
		if e.onDeliver != nil {
			e.onDeliver(f)
		}
	}
}

func (e *Endpoint) onAckInfo(f frame.Frame) {
	if f.Kind != frame.SRAck {
		return
	}
	if s := e.SenderTo(f.Src); s != nil {
		s.OnAck(f.Seq, f.Bitmap)
	}
}

// makeAck builds the selective-repeat acknowledgement for a received data
// frame: the highest received sequence number plus the 32-frame bitmap.
func (e *Endpoint) makeAck(data frame.Frame) *frame.Frame {
	r, ok := e.recv[data.Src]
	if !ok {
		return &frame.Frame{Kind: frame.Ack, Src: e.m.ID(), Dst: data.Src, Seq: data.Seq}
	}
	// Anchor the ACK at the just-received frame so that even retransmitted
	// holes far behind the highest sequence number are acknowledged.
	ackSeq, bitmap := r.AckFor(data.Seq)
	return &frame.Frame{Kind: frame.SRAck, Src: e.m.ID(), Dst: data.Src, Seq: ackSeq, Bitmap: bitmap}
}
