package comap

import (
	"sort"

	"repro/internal/audit"
	"repro/internal/frame"
)

// DigestState folds the agent's learned state into an audit deep digest:
// the co-occurrence map (sorted by ongoing link, then receiver), its
// hit/miss counters and the seen-link table. These are exactly the maps
// whose iteration-order leaks caused PR 5's nondeterminism bugs, so a deep
// digest that still matches while the event chains split acquits them.
// Read-only; called at ledger deep-digest slices on the sim goroutine.
func (a *Agent) DigestState(h *audit.Hasher) {
	h.Int(int(a.id))
	a.cmap.digest(h)
	links := make([]Link, 0, len(a.seen))
	for l := range a.seen {
		links = append(links, l)
	}
	sortLinks(links)
	h.Int(len(links))
	for _, l := range links {
		h.Int(int(l.Src))
		h.Int(int(l.Dst))
		h.Int64(int64(a.seen[l]))
	}
}

func (c *CoOccurrenceMap) digest(h *audit.Hasher) {
	h.Int(c.hits)
	h.Int(c.misses)
	links := make([]Link, 0, len(c.entries))
	for l := range c.entries {
		links = append(links, l)
	}
	sortLinks(links)
	h.Int(len(links))
	for _, l := range links {
		h.Int(int(l.Src))
		h.Int(int(l.Dst))
		row := c.entries[l]
		dsts := make([]frame.NodeID, 0, len(row))
		for d := range row {
			dsts = append(dsts, d)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		h.Int(len(dsts))
		for _, d := range dsts {
			h.Int(int(d))
			h.Bool(row[d])
		}
	}
}

func sortLinks(links []Link) {
	sort.Slice(links, func(i, j int) bool {
		if links[i].Src != links[j].Src {
			return links[i].Src < links[j].Src
		}
		return links[i].Dst < links[j].Dst
	})
}
