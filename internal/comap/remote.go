package comap

import "repro/internal/frame"

// RemoteSource tells the agent which degradation-ladder rung produced a
// remote verdict, so it can update the right counters and trace provenance.
type RemoteSource int

// The ladder rungs a remote verdict can come from, healthiest first.
const (
	// RemoteCachedFresh: the agent's local co-occurrence map had the
	// verdict and the control plane is healthy — identical to a local hit.
	RemoteCachedFresh RemoteSource = iota
	// RemoteValidated: the control plane computed a fresh verdict within
	// the call deadline — identical to a local miss+validate.
	RemoteValidated
	// RemoteStale: the control plane is degraded; the client served its
	// cached-but-stale verdict computed with widened error-radius margins.
	RemoteStale
	// RemoteCoarse: no usable cache entry; the client fell back to coarse
	// registry-only geometry over its local fix view.
	RemoteCoarse
	// RemoteUnavailable: the ladder bottomed out — behave like plain DCF.
	RemoteUnavailable
)

// RemoteVerdict is one control-plane answer.
type RemoteVerdict struct {
	Source RemoteSource
	// Allowed is the concurrency verdict (meaningless for
	// RemoteUnavailable, and for RemoteValidated with Unhealthy set).
	Allowed bool
	// Unhealthy marks a Validated answer where the service's health gate
	// tripped: the agent falls back to DCF without caching, mirroring the
	// local unhealthy_fix path.
	Unhealthy bool
	// Req is the control-plane request ID that decided (or, on the
	// degraded rungs, failed to decide) this verdict; 0 when no RPC was
	// issued. The agent stamps it into its trace events so the analyzer
	// can stitch MAC-level grant/deny decisions to RPC spans.
	Req uint64
}

// RemoteVerdicts is the control-plane client interface (mapsvc.Client).
// cached exposes the agent's local co-occurrence map lookup to the client;
// the client MUST call it exactly once per Verdict — the lookup mutates the
// map's hit/miss counters, which are part of the deterministic state digest.
type RemoteVerdicts interface {
	Verdict(observer frame.NodeID, ongoing Link, myDst frame.NodeID, cached func() (allowed, found bool)) RemoteVerdict
}

// SetRemote routes co-occurrence-map misses through the mapsvc control
// plane. The local map stays authoritative for hits (it is part of the
// agent's digested state); the remote service is consulted only when the
// local map has no verdict, and its answer is inserted exactly like a local
// validation. Nil restores fully in-process operation.
func (a *Agent) SetRemote(r RemoteVerdicts) { a.remote = r }

// remoteAllowed is the remote-mode decision path. At a zero-fault spec the
// client answers only CachedFresh/Validated, making counters, trace events
// and map state byte-identical to the in-process oracle; the degraded
// sources only appear once RPC faults push the client down the ladder.
func (a *Agent) remoteAllowed(ongoing Link, myDst frame.NodeID) bool {
	v := a.remote.Verdict(a.id, ongoing, myDst, func() (bool, bool) {
		return a.cmap.Lookup(ongoing, myDst)
	})
	switch v.Source {
	case RemoteCachedFresh:
		a.mHit.Inc()
		a.emitVerdictReq(ongoing, myDst, v.Allowed, "cached", v.Req)
		return v.Allowed
	case RemoteValidated:
		a.mMiss.Inc()
		if v.Unhealthy {
			a.fallbackToDCFReq(ongoing, myDst, "unhealthy_fix", v.Req)
			return false
		}
		a.cmap.Insert(ongoing, myDst, v.Allowed)
		if v.Allowed {
			a.mAllow.Inc()
		} else {
			a.mDeny.Inc()
		}
		a.mMapSize.Set(float64(a.cmap.Len()))
		a.emitVerdictReq(ongoing, myDst, v.Allowed, "validated", v.Req)
		return v.Allowed
	case RemoteStale:
		a.emitVerdictReq(ongoing, myDst, v.Allowed, "stale", v.Req)
		return v.Allowed
	case RemoteCoarse:
		a.emitVerdictReq(ongoing, myDst, v.Allowed, "coarse", v.Req)
		return v.Allowed
	default:
		a.fallbackToDCFReq(ongoing, myDst, "control_plane_down", v.Req)
		return false
	}
}
