package comap

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// buildStar wires one AP endpoint with two client endpoints around it.
func buildStar(seed int64) (eng *sim.Engine, ap, c1, c2 *Endpoint) {
	eng = sim.New(seed)
	medium := channel.NewMedium(eng, radio.NewLogNormal2400(2.9, 0), -95)
	cfg := mac.Config{PHY: phy.DSSS(), CCAThresholdDBm: -81, FixedCW: 8, NoRetransmit: true}
	mk := func(id frame.NodeID, pos geom.Point) *Endpoint {
		tr := medium.AddNode(id, pos, 0, nil)
		m := mac.New(eng, tr, cfg)
		tr.SetListener(m)
		return NewEndpoint(eng, m, 8)
	}
	ap = mk(100, geom.Pt(0, 0))
	c1 = mk(1, geom.Pt(10, 0))
	c2 = mk(2, geom.Pt(0, 10))
	return eng, ap, c1, c2
}

func TestEndpointMultiStreamRoundRobin(t *testing.T) {
	eng, ap, c1, c2 := buildStar(1)
	// The AP serves two downlinks; both must make progress.
	ap.StartStream(1, func() int { return 600 })
	ap.StartStream(2, func() int { return 600 })
	eng.RunUntil(time.Second)

	g1 := c1.DeliveredFrom(100).Frames()
	g2 := c2.DeliveredFrom(100).Frames()
	if g1 == 0 || g2 == 0 {
		t.Fatalf("starved stream: c1=%d c2=%d", g1, g2)
	}
	// Round-robin fairness within 20%.
	ratio := float64(g1) / float64(g2)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("unfair split: c1=%d c2=%d", g1, g2)
	}
	// Per-stream ARQ state is independent.
	if ap.SenderTo(1) == nil || ap.SenderTo(2) == nil {
		t.Fatal("missing stream senders")
	}
	if ap.SenderTo(1).Acked() == 0 || ap.SenderTo(2).Acked() == 0 {
		t.Error("per-stream ACK accounting broken")
	}
	if ap.SenderTo(99) != nil {
		t.Error("unknown stream should be nil")
	}
}

func TestEndpointMixedSaturatedAndCBRStreams(t *testing.T) {
	eng, ap, c1, c2 := buildStar(2)
	ap.StartStream(1, func() int { return 600 })             // saturated
	ap.StartCBRStream(2, func() int { return 600 }, 100_000) // 100 kbps
	eng.RunUntil(2 * time.Second)

	cbr := c2.DeliveredFrom(100).BitsPerSecond(2 * time.Second)
	if cbr > 120_000 {
		t.Errorf("CBR stream exceeded its offered load: %.0f bps", cbr)
	}
	if cbr < 60_000 {
		t.Errorf("CBR stream starved: %.0f bps", cbr)
	}
	// The saturated stream takes the remaining capacity.
	sat := c1.DeliveredFrom(100).BitsPerSecond(2 * time.Second)
	if sat < 5*cbr {
		t.Errorf("saturated stream got %.0f bps vs CBR %.0f", sat, cbr)
	}
}

func TestEndpointUplinkAndDownlinkTogether(t *testing.T) {
	eng, ap, c1, _ := buildStar(3)
	ap.StartStream(1, func() int { return 500 })
	c1.StartStream(100, func() int { return 500 })
	eng.RunUntil(time.Second)
	down := c1.DeliveredFrom(100).Frames()
	up := ap.DeliveredFrom(1).Frames()
	if down == 0 || up == 0 {
		t.Errorf("two-way starvation: down=%d up=%d", down, up)
	}
}
