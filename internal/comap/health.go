package comap

import (
	"time"

	"repro/internal/frame"
	"repro/internal/loc"
)

// HealthPolicy is CO-MAP's location-health model: instead of trusting every
// coordinate unconditionally, the agent tracks the age and reported error
// radius of each peer fix and degrades gracefully when the location substrate
// misbehaves. Decisions involving a fix past the confidence bound fall back
// to plain DCF (deny concurrent transmission, default packet size and
// contention window); younger-but-stale fixes inflate the SIR safety margin
// so marginal concurrent pairings are vetoed before they corrupt frames.
type HealthPolicy struct {
	// MaxFixAge is the confidence bound: a decision involving a fix older
	// than this (or a peer with no fix at all) falls back to plain DCF.
	MaxFixAge time.Duration
	// StalenessMarginDBPerSec inflates the SIR safety margin by this many dB
	// per second of the oldest involved fix's age, so staler positions need a
	// larger predicted advantage before concurrency is granted.
	StalenessMarginDBPerSec float64
	// UseErrorRadius, when set, evaluates link geometry at worst-case
	// distances (own link longer, interferer closer, each by the reported
	// error radius) instead of the nominal reported points.
	UseErrorRadius bool
}

// DefaultHealthPolicy returns the policy netsim enables when fault injection
// is active: fall back to DCF once a fix is older than three in-band refresh
// intervals, and demand 1 dB of extra margin per second of staleness.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{
		MaxFixAge:               3 * time.Second,
		StalenessMarginDBPerSec: 1.0,
		UseErrorRadius:          true,
	}
}

// Enabled reports whether the policy gates anything.
func (h HealthPolicy) Enabled() bool { return h.MaxFixAge > 0 }

// SetHealth enables the location-health model. now supplies virtual time for
// fix-age computation; a zero policy (or nil clock) disables gating and
// restores the oracle-trusting behavior.
func (a *Agent) SetHealth(p HealthPolicy, now func() time.Duration) {
	a.health = p
	a.now = now
}

// Health returns the active policy (zero when disabled).
func (a *Agent) Health() HealthPolicy { return a.health }

// healthEnabled reports whether health gating is live.
func (a *Agent) healthEnabled() bool { return a.health.Enabled() && a.now != nil }

// fixOf resolves a peer's fix through the provider. Providers without fix
// metadata (plain loc.Provider) are treated as always-fresh oracles with no
// reported error: their fixes carry a negative ReportedAt, which fixHealth
// reads as age zero rather than an age growing with the sim clock.
func (a *Agent) fixOf(id frame.NodeID) (loc.Fix, bool) {
	if fp, ok := a.locs.(loc.FixProvider); ok {
		return fp.Fix(id)
	}
	p, ok := a.locs.Position(id)
	return loc.Fix{Pos: p, ReportedAt: -1}, ok
}

// fixHealth summarises the health of the fixes of the given peers: the
// oldest age and largest error radius among them. healthy is false when any
// peer has no fix or a fix older than the confidence bound. With health
// gating disabled it always reports healthy with zero age.
func (a *Agent) fixHealth(ids ...frame.NodeID) (maxAge time.Duration, maxErr float64, healthy bool) {
	if !a.healthEnabled() {
		return 0, 0, true
	}
	now := a.now()
	healthy = true
	for _, id := range ids {
		fix, ok := a.fixOf(id)
		if !ok {
			return maxAge, maxErr, false
		}
		var age time.Duration
		if fix.ReportedAt >= 0 {
			age = now - fix.ReportedAt
			if age < 0 {
				age = 0
			}
		}
		if age > maxAge {
			maxAge = age
		}
		if fix.ErrorRadiusMeters > maxErr {
			maxErr = fix.ErrorRadiusMeters
		}
		if age > a.health.MaxFixAge {
			healthy = false
		}
	}
	return maxAge, maxErr, healthy
}

// stalenessMarginDB converts a fix age into extra SIR margin.
func (a *Agent) stalenessMarginDB(age time.Duration) float64 {
	if !a.healthEnabled() {
		return 0
	}
	return a.health.StalenessMarginDBPerSec * age.Seconds()
}

// useWorstCaseGeometry reports whether link geometry should be evaluated at
// worst-case distances derived from the fixes' reported error radii.
func (a *Agent) useWorstCaseGeometry() bool {
	return a.healthEnabled() && a.health.UseErrorRadius
}

// fallbackToDCF records one health-gated fallback decision: the agent
// refused to act on degraded location input and behaved like plain DCF
// instead. reason distinguishes a missing fix from a stale one.
func (a *Agent) fallbackToDCF(ongoing Link, myDst frame.NodeID, reason string) {
	a.fallbackToDCFReq(ongoing, myDst, reason, 0)
}

// fallbackToDCFReq is fallbackToDCF carrying the control-plane request ID
// behind the decision (0 when no RPC was involved).
func (a *Agent) fallbackToDCFReq(ongoing Link, myDst frame.NodeID, reason string, req uint64) {
	a.mFallback.Inc()
	if a.tr.Enabled() {
		e := traceFallbackEvent(ongoing, myDst, reason)
		e.Req = req
		a.tr.Emit(e)
	}
}
