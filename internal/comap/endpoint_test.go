package comap

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// buildLink wires two stations at the given separation with CO-MAP endpoints.
func buildLink(seed int64, sigmaDB, dist float64) (eng *sim.Engine, tx, rx *Endpoint) {
	eng = sim.New(seed)
	medium := channel.NewMedium(eng, radio.NewLogNormal2400(2.9, sigmaDB), -95)
	cfg := mac.Config{
		PHY:             phy.DSSS(),
		CCAThresholdDBm: -81,
		FixedCW:         8,
		NoRetransmit:    true,
	}
	mk := func(id frame.NodeID, pos geom.Point) *Endpoint {
		tr := medium.AddNode(id, pos, 0, nil)
		m := mac.New(eng, tr, cfg)
		tr.SetListener(m)
		return NewEndpoint(eng, m, 8)
	}
	tx = mk(1, geom.Pt(0, 0))
	rx = mk(2, geom.Pt(dist, 0))
	return eng, tx, rx
}

func TestEndpointSaturatedStreamDelivers(t *testing.T) {
	eng, tx, rx := buildLink(1, 0, 10)
	tx.StartStream(2, func() int { return 1000 })
	eng.RunUntil(time.Second)

	if rx.Delivered().Frames() == 0 {
		t.Fatal("no frames delivered")
	}
	// Clean link at 1 Mbps: goodput should be a decent fraction of the
	// channel rate.
	mbps := rx.Delivered().Mbps(time.Second)
	if mbps < 0.5 {
		t.Errorf("goodput = %v Mbps, want > 0.5 on a clean 1 Mbps link", mbps)
	}
	// The sender's ARQ should have learned about the deliveries.
	if tx.Sender().Acked() == 0 {
		t.Error("sender never saw an SR ACK")
	}
	if tx.Sender().Dropped() != 0 {
		t.Errorf("clean link dropped %d frames", tx.Sender().Dropped())
	}
}

func TestEndpointDeliveredCountsUniqueOnly(t *testing.T) {
	// Marginal link with shadowing: many losses and retransmissions.
	eng, tx, rx := buildLink(2, 4, 68)
	tx.StartStream(2, func() int { return 500 })
	eng.RunUntil(2 * time.Second)

	sent := tx.MAC().Stats().Get("tx.data")
	delivered := rx.Delivered().Frames()
	if delivered == 0 {
		t.Fatal("nothing delivered on marginal link")
	}
	if delivered >= sent {
		t.Errorf("delivered %d >= transmissions %d on lossy link (dedup broken?)", delivered, sent)
	}
	// Retransmissions must have happened (that's the point of SR ARQ here).
	if tx.MAC().Stats().Get("ack.timeout") == 0 {
		t.Error("expected ACK timeouts on marginal link")
	}
}

func TestEndpointSRAckUsed(t *testing.T) {
	eng, tx, rx := buildLink(3, 0, 10)
	deliveredSeqs := make(map[uint16]bool)
	rx.OnDeliver(func(f frame.Frame) {
		if deliveredSeqs[f.Seq] {
			t.Errorf("seq %d delivered twice", f.Seq)
		}
		deliveredSeqs[f.Seq] = true
	})
	tx.StartStream(2, func() int { return 800 })
	eng.RunUntil(500 * time.Millisecond)
	if tx.Sender().Acked() == 0 {
		t.Error("SR ACKs did not reach the sender's ARQ")
	}
	if len(deliveredSeqs) == 0 {
		t.Error("no deliveries")
	}
}

func TestEndpointCBRStreamRespectsRate(t *testing.T) {
	eng, tx, rx := buildLink(4, 0, 10)
	const offered = 200_000.0 // 200 kbps over a 1 Mbps channel
	tx.StartCBRStream(2, func() int { return 500 }, offered)
	eng.RunUntil(2 * time.Second)

	got := rx.Delivered().BitsPerSecond(2 * time.Second)
	if got > 1.1*offered {
		t.Errorf("goodput %v exceeds offered load %v", got, offered)
	}
	if got < 0.7*offered {
		t.Errorf("goodput %v far below offered load %v on a clean link", got, offered)
	}
}

func TestEndpointStopStream(t *testing.T) {
	eng, tx, rx := buildLink(5, 0, 10)
	tx.StartStream(2, func() int { return 500 })
	eng.RunUntil(100 * time.Millisecond)
	tx.StopStream()
	delivered := rx.Delivered().Frames()
	eng.RunUntil(500 * time.Millisecond)
	// A couple of queued frames may still drain, then the stream stops.
	drained := rx.Delivered().Frames() - delivered
	if drained > int64(tx.Sender().Window())+pipelineDepth {
		t.Errorf("stream kept flowing after stop: %d extra frames", drained)
	}
}

func TestEndpointPayloadFunctionConsultedPerFrame(t *testing.T) {
	eng, tx, rx := buildLink(6, 0, 10)
	sizes := []int{1400, 1000, 600, 200}
	i := 0
	tx.StartStream(2, func() int {
		s := sizes[i%len(sizes)]
		i++
		return s
	})
	eng.RunUntil(300 * time.Millisecond)
	if rx.Delivered().Frames() < 4 {
		t.Fatal("too few deliveries")
	}
	if i < 4 {
		t.Errorf("payload function consulted %d times", i)
	}
	_ = eng
}

func TestEndpointTwoWayTraffic(t *testing.T) {
	eng, a, b := buildLink(7, 0, 10)
	a.StartStream(2, func() int { return 700 })
	b.StartStream(1, func() int { return 700 })
	eng.RunUntil(time.Second)
	if a.Delivered().Frames() == 0 || b.Delivered().Frames() == 0 {
		t.Errorf("two-way deliveries: a=%d b=%d",
			a.Delivered().Frames(), b.Delivered().Frames())
	}
}
