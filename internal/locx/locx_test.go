package locx

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// testStation wires a MAC whose OnControl feeds the locx node.
type testStation struct {
	m    *mac.MAC
	node *Node
}

func buildExchange(t *testing.T) (*sim.Engine, map[frame.NodeID]*testStation) {
	t.Helper()
	eng := sim.New(1)
	medium := channel.NewMedium(eng, radio.NewLogNormal2400(2.9, 0), -95)
	cfg := mac.Config{PHY: phy.DSSS(), CCAThresholdDBm: -81, FixedCW: 8}

	stations := make(map[frame.NodeID]*testStation)
	mk := func(id frame.NodeID, pos geom.Point) *testStation {
		tr := medium.AddNode(id, pos, 0, nil)
		m := mac.New(eng, tr, cfg)
		tr.SetListener(m)
		st := &testStation{m: m}
		stations[id] = st
		return st
	}
	positions := map[frame.NodeID]geom.Point{
		100: geom.Pt(0, 0),  // AP
		1:   geom.Pt(10, 0), // client
		2:   geom.Pt(0, 12), // client
	}
	measure := func(id frame.NodeID) func() (geom.Point, bool) {
		return func() (geom.Point, bool) { return positions[id], true }
	}
	ap := mk(100, positions[100])
	ap.node = NewAP(eng, ap.m, measure(100), Config{})
	for _, id := range []frame.NodeID{1, 2} {
		st := mk(id, positions[id])
		st.node = NewClient(eng, st.m, 100, measure(id), Config{})
	}
	for _, st := range stations {
		st := st
		st.m.SetHooks(mac.Hooks{OnControl: func(f frame.Frame, _ float64) {
			st.node.OnBeacon(f)
		}})
	}
	return eng, stations
}

func TestExchangePopulatesTables(t *testing.T) {
	eng, stations := buildExchange(t)
	for _, st := range stations {
		st.node.Start()
	}
	eng.RunUntil(2 * time.Second)

	// The AP must know every client, and every client must learn the other
	// client's position through the AP's re-broadcasts.
	ap := stations[100].node
	for _, id := range []frame.NodeID{1, 2} {
		if _, ok := ap.Position(id); !ok {
			t.Errorf("AP missing client %d", id)
		}
	}
	c1 := stations[1].node
	if p, ok := c1.Position(2); !ok || p != geom.Pt(0, 12) {
		t.Errorf("client 1 learned client 2 at %v ok=%v", p, ok)
	}
	c2 := stations[2].node
	if p, ok := c2.Position(1); !ok || p != geom.Pt(10, 0) {
		t.Errorf("client 2 learned client 1 at %v ok=%v", p, ok)
	}
	if c1.TableSize() < 3 {
		t.Errorf("client 1 table size = %d", c1.TableSize())
	}
}

func TestExchangeOverheadBounded(t *testing.T) {
	eng, stations := buildExchange(t)
	for _, st := range stations {
		st.node.Start()
	}
	eng.RunUntil(5 * time.Second)

	// Static nodes: clients only report on the slow refresh cadence (the
	// movement threshold suppresses everything else) — one per
	// RefreshInterval over the 5 s run.
	for _, id := range []frame.NodeID{1, 2} {
		got := stations[id].node.BeaconsSent()
		if got < 1 || got > 6 {
			t.Errorf("client %d sent %d beacons, want 1..6 (refresh only)", id, got)
		}
	}
	ap := stations[100].node
	if ap.BeaconsSent() == 0 {
		t.Error("AP never re-broadcast")
	}
	// Overhead in bytes: well under 1% of a 6 Mbps channel over 5 s.
	total := ap.BytesSent()
	for _, id := range []frame.NodeID{1, 2} {
		total += stations[id].node.BytesSent()
	}
	budget := int64(6e6 / 8 * 5 / 100)
	if total > budget {
		t.Errorf("location overhead %d bytes exceeds 1%% budget %d", total, budget)
	}
}

func TestOnBeaconChangeDetection(t *testing.T) {
	eng := sim.New(1)
	medium := channel.NewMedium(eng, radio.NewLogNormal2400(2.9, 0), -95)
	tr := medium.AddNode(1, geom.Pt(0, 0), 0, nil)
	m := mac.New(eng, tr, mac.Config{PHY: phy.DSSS(), CCAThresholdDBm: -81})
	n := NewClient(eng, m, 100, func() (geom.Point, bool) { return geom.Pt(0, 0), true }, Config{})

	beacon := frame.Frame{Kind: frame.LocationBeacon, Seq: 7, X: 5, Y: 5}
	if !n.OnBeacon(beacon) {
		t.Error("first beacon should report change")
	}
	if n.OnBeacon(beacon) {
		t.Error("repeat beacon should not report change")
	}
	beacon.X = 5.5 // below the 1 m epsilon
	if n.OnBeacon(beacon) {
		t.Error("sub-epsilon move should not report change")
	}
	beacon.X = 10
	if !n.OnBeacon(beacon) {
		t.Error("move beyond epsilon should report change")
	}
	// Non-beacon frames are ignored.
	if n.OnBeacon(frame.Frame{Kind: frame.Data, Seq: 9}) {
		t.Error("data frame treated as beacon")
	}
	if _, ok := n.Position(9); ok {
		t.Error("data frame populated the table")
	}
}

func TestStopHaltsBeacons(t *testing.T) {
	eng, stations := buildExchange(t)
	for _, st := range stations {
		st.node.Start()
	}
	eng.RunUntil(500 * time.Millisecond)
	ap := stations[100].node
	sent := ap.BeaconsSent()
	ap.Stop()
	eng.RunUntil(3 * time.Second)
	if got := ap.BeaconsSent(); got != sent {
		t.Errorf("AP kept beaconing after Stop: %d -> %d", sent, got)
	}
}

func TestMeasureFailureTolerated(t *testing.T) {
	eng := sim.New(1)
	medium := channel.NewMedium(eng, radio.NewLogNormal2400(2.9, 0), -95)
	tr := medium.AddNode(1, geom.Pt(0, 0), 0, nil)
	m := mac.New(eng, tr, mac.Config{PHY: phy.DSSS(), CCAThresholdDBm: -81})
	tr.SetListener(m)
	n := NewClient(eng, m, 100, func() (geom.Point, bool) { return geom.Point{}, false }, Config{})
	n.Start()
	eng.RunUntil(time.Second)
	if n.BeaconsSent() != 0 {
		t.Error("client without a position fix must not beacon")
	}
}
