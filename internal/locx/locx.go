// Package locx implements CO-MAP's in-band location exchange (paper §IV-A
// and §V): every client measures its own position (with localization error)
// and reports it to its AP in a LocationBeacon frame; APs re-broadcast the
// positions they know, one beacon per node, so that every station within
// range builds a neighbor table covering its 2-hop neighborhood. The paper's
// overhead argument — "the location exchange can be done with little
// communication overhead" — becomes measurable: the exchange rides the same
// simulated MAC as data traffic and its frames are counted.
//
// A locx.Node is a loc.Provider, so CO-MAP agents can run directly on the
// learned (rather than oracle) positions, including their staleness and
// error.
package locx

import (
	"sort"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/mac"
	"repro/internal/sim"
)

// Config parameterises the exchange.
type Config struct {
	// ReportInterval is how often a client checks whether its position
	// moved enough to re-report (the movement check itself is free; only
	// actual reports cost airtime). Default 250 ms.
	ReportInterval time.Duration
	// BroadcastInterval is how often an AP re-broadcasts one neighbor's
	// position (round-robin over its table). Default 100 ms.
	BroadcastInterval time.Duration
	// UpdateThresholdMeters is the paper's mobility-management rule: a
	// client re-reports only after moving more than this distance. Default
	// 1 m.
	UpdateThresholdMeters float64
	// RefreshInterval forces a client re-report even without movement, so a
	// lost beacon (e.g. the association-time burst colliding) cannot leave
	// neighbors blind forever. Default 1 s.
	RefreshInterval time.Duration
	// ErrorRadiusMeters is the localization error bound attached to every
	// fix this node learns or reports (typically the registry's error
	// range). Zero means the source reports no error bound.
	ErrorRadiusMeters float64
}

func (c *Config) applyDefaults() {
	if c.ReportInterval == 0 {
		c.ReportInterval = 250 * time.Millisecond
	}
	if c.BroadcastInterval == 0 {
		c.BroadcastInterval = 100 * time.Millisecond
	}
	if c.UpdateThresholdMeters == 0 {
		c.UpdateThresholdMeters = 1
	}
	if c.RefreshInterval == 0 {
		c.RefreshInterval = time.Second
	}
}

// Node is one station's location-exchange endpoint and neighbor table.
// LocationBeacon frames carry the position owner's ID in the Seq field so
// APs can relay third-party positions.
type Node struct {
	eng *sim.Engine
	m   *mac.MAC
	cfg Config
	// measure returns this node's current measured position (already
	// containing localization error) — typically loc.Registry.Position.
	measure func() (geom.Point, bool)
	isAP    bool
	apID    frame.NodeID

	table          map[frame.NodeID]loc.Fix
	lastReported   geom.Point
	lastReportTime time.Duration
	hasReported    bool
	rrOrder        []frame.NodeID
	rr             int

	// lossFn, when set, decides per outgoing beacon whether the in-band
	// report is lost (the airtime is spent but no receiver learns from it).
	// The faults layer installs it.
	lossFn func() bool

	beaconsSent int
	beaconsLost int
	bytesSent   int64
	tickEv      sim.Handle
}

var _ loc.FixProvider = (*Node)(nil)

// NewClient creates the exchange endpoint of a client associated with apID.
// measure supplies the client's own (noisy) position fix.
func NewClient(eng *sim.Engine, m *mac.MAC, apID frame.NodeID, measure func() (geom.Point, bool), cfg Config) *Node {
	cfg.applyDefaults()
	return &Node{
		eng:     eng,
		m:       m,
		cfg:     cfg,
		measure: measure,
		apID:    apID,
		table:   make(map[frame.NodeID]loc.Fix),
	}
}

// NewAP creates the exchange endpoint of an access point.
func NewAP(eng *sim.Engine, m *mac.MAC, measure func() (geom.Point, bool), cfg Config) *Node {
	cfg.applyDefaults()
	return &Node{
		eng:     eng,
		m:       m,
		cfg:     cfg,
		measure: measure,
		isAP:    true,
		table:   make(map[frame.NodeID]loc.Fix),
	}
}

// Start begins the periodic reporting (clients) or re-broadcasting (APs).
// Call after the MAC hooks are wired so beacons flow. The first tick is
// staggered by the node ID (a few milliseconds) so association-time beacons
// do not all collide.
func (n *Node) Start() {
	n.learnSelf()
	n.eng.AfterTagged(time.Duration(n.m.ID()%32)*2*time.Millisecond, sim.TagLocx, int32(n.m.ID()), func() {
		n.tick()
		n.scheduleTick()
	})
}

// SetLossFn installs the in-band report-loss process: when it returns true
// for an outgoing beacon, the beacon is lost (its overhead is still counted
// — the node transmitted it — but no neighbor table learns from it). nil
// restores lossless beacons. The faults layer drives this off a dedicated
// seeded stream so runs stay reproducible.
func (n *Node) SetLossFn(f func() bool) { n.lossFn = f }

// learnSelf refreshes this node's own fix in its table.
func (n *Node) learnSelf() (geom.Point, bool) {
	pos, ok := n.measure()
	if ok {
		n.table[n.m.ID()] = loc.Fix{
			Pos:               pos,
			ReportedAt:        n.eng.Now(),
			ErrorRadiusMeters: n.cfg.ErrorRadiusMeters,
		}
	}
	return pos, ok
}

// Stop cancels the periodic work.
func (n *Node) Stop() {
	if n.tickEv.Active() {
		n.eng.Cancel(n.tickEv)
		n.tickEv = sim.Handle{}
	}
}

func (n *Node) scheduleTick() {
	d := n.cfg.ReportInterval
	if n.isAP {
		d = n.cfg.BroadcastInterval
	}
	n.tickEv = n.eng.AfterTagged(d, sim.TagLocx, int32(n.m.ID()), func() {
		n.tick()
		n.scheduleTick()
	})
}

func (n *Node) tick() {
	if n.isAP {
		n.broadcastNext()
		return
	}
	n.maybeReport()
}

// maybeReport sends the client's own position to its AP if it moved beyond
// the update threshold (or was never reported).
func (n *Node) maybeReport() {
	pos, ok := n.learnSelf()
	if !ok {
		return
	}
	moved := !n.hasReported || n.lastReported.DistanceTo(pos) > n.cfg.UpdateThresholdMeters
	stale := n.eng.Now()-n.lastReportTime >= n.cfg.RefreshInterval
	if n.hasReported && !moved && !stale {
		return
	}
	f := frame.Frame{
		Kind: frame.LocationBeacon,
		Dst:  n.apID,
		Seq:  uint16(n.m.ID()), // position owner
		X:    pos.X,
		Y:    pos.Y,
	}
	if !n.send(f) {
		return // queue full: try again next interval
	}
	n.lastReported = pos
	n.lastReportTime = n.eng.Now()
	n.hasReported = true
}

// send enqueues one beacon, honoring the injected loss process. It reports
// whether the beacon counts as sent (lost beacons do: the airtime was spent,
// the information just never arrived).
func (n *Node) send(f frame.Frame) bool {
	if n.lossFn != nil && n.lossFn() {
		n.beaconsLost++
		n.beaconsSent++
		n.bytesSent += int64(f.AirBytes())
		return true
	}
	if err := n.m.Enqueue(f); err != nil {
		return false
	}
	n.beaconsSent++
	n.bytesSent += int64(f.AirBytes())
	return true
}

// broadcastNext re-broadcasts one known position, round-robin.
func (n *Node) broadcastNext() {
	n.learnSelf()
	if len(n.rrOrder) != len(n.table) {
		// The rotation order decides which positions hit the air first, so
		// it must not inherit the map's randomized iteration order — that
		// would make otherwise identical runs diverge. Broadcast in ID order.
		n.rrOrder = n.rrOrder[:0]
		for id := range n.table {
			n.rrOrder = append(n.rrOrder, id)
		}
		sort.Slice(n.rrOrder, func(i, j int) bool { return n.rrOrder[i] < n.rrOrder[j] })
	}
	if len(n.rrOrder) == 0 {
		return
	}
	id := n.rrOrder[n.rr%len(n.rrOrder)]
	n.rr++
	fix, ok := n.table[id]
	if !ok {
		return
	}
	n.send(frame.Frame{
		Kind: frame.LocationBeacon,
		Dst:  frame.Broadcast,
		Seq:  uint16(id),
		X:    fix.Pos.X,
		Y:    fix.Pos.Y,
	})
}

// Forget drops a node from the neighbor table (station churn: the departed
// node's position must not linger as a live fix). It reports whether the
// node was known.
func (n *Node) Forget(id frame.NodeID) bool {
	_, ok := n.table[id]
	if ok {
		delete(n.table, id)
	}
	return ok
}

// positionChangeEpsilon is the movement below which a re-learned position
// does not count as changed (no need to invalidate co-occurrence verdicts).
const positionChangeEpsilon = 1.0

// OnBeacon feeds a decoded LocationBeacon into the neighbor table. Wire it
// from the MAC's OnControl hook. It reports whether the table changed
// materially (a new node, or an existing one moved more than 1 m), so the
// caller can invalidate cached co-occurrence verdicts.
func (n *Node) OnBeacon(f frame.Frame) (changed bool) {
	if f.Kind != frame.LocationBeacon {
		return false
	}
	owner := frame.NodeID(f.Seq)
	pos := geom.Pt(f.X, f.Y)
	old, known := n.table[owner]
	n.table[owner] = loc.Fix{
		Pos:               pos,
		ReportedAt:        n.eng.Now(),
		ErrorRadiusMeters: n.cfg.ErrorRadiusMeters,
	}
	return !known || old.Pos.DistanceTo(pos) > positionChangeEpsilon
}

// Position implements loc.Provider from the learned neighbor table.
func (n *Node) Position(id frame.NodeID) (geom.Point, bool) {
	fix, ok := n.table[id]
	return fix.Pos, ok
}

// Fix implements loc.FixProvider: a learned position's ReportedAt is the
// time this node last heard a beacon carrying it, so in-band staleness —
// lost beacons, a silent peer — surfaces directly as fix age.
func (n *Node) Fix(id frame.NodeID) (loc.Fix, bool) {
	fix, ok := n.table[id]
	return fix, ok
}

// TableSize returns the number of known positions (including self).
func (n *Node) TableSize() int { return len(n.table) }

// BeaconsSent and BytesSent expose the exchange's airtime overhead;
// BeaconsLost counts beacons consumed by the injected in-band loss process.
func (n *Node) BeaconsSent() int { return n.beaconsSent }
func (n *Node) BeaconsLost() int { return n.beaconsLost }
func (n *Node) BytesSent() int64 { return n.bytesSent }
