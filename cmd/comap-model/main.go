// Command comap-model prints the analytical DCF-with-hidden-terminals model
// (paper §IV-D2): goodput surfaces over payload size and contention window,
// and the precomputed (CW, packet size) adaptation table CO-MAP consults at
// runtime.
//
//	comap-model -contenders 5
//	comap-model -table -maxhidden 5 -maxcontenders 8
package main

import (
	"flag"
	"fmt"

	"repro/internal/bianchi"
	"repro/internal/phy"
)

func main() {
	var (
		contenders    = flag.Int("contenders", 5, "number of contending nodes for the goodput surfaces")
		table         = flag.Bool("table", true, "print the (CW, packet size) adaptation table")
		surfaces      = flag.Bool("surfaces", true, "print goodput-vs-payload curves")
		maxHidden     = flag.Int("maxhidden", 5, "table: maximum hidden-terminal count")
		maxContenders = flag.Int("maxcontenders", 8, "table: maximum contender count")
	)
	flag.Parse()

	base := bianchi.FromPHY(phy.NS2Table1(), phy.RateOFDM6)

	if *surfaces {
		printSurfaces(base, *contenders)
	}
	if *table {
		printTable(base, *maxHidden, *maxContenders)
	}
}

func printSurfaces(base bianchi.Params, contenders int) {
	payloads := []int{100, 200, 400, 600, 800, 1000, 1200, 1500}
	for _, h := range []int{0, 1, 3, 5} {
		fmt.Printf("goodput (Mbps) with c=%d contenders, h=%d hidden terminals:\n", contenders, h)
		fmt.Printf("%-12s", "payload (B)")
		for _, w := range bianchi.DefaultWindows {
			fmt.Printf("%10s", fmt.Sprintf("W=%d", w))
		}
		fmt.Println()
		for _, l := range payloads {
			fmt.Printf("%-12d", l)
			for _, w := range bianchi.DefaultWindows {
				p := base
				p.Contenders = contenders
				p.Hidden = h
				p.W = w
				fmt.Printf("%10.3f", p.Goodput(l)/1e6)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

func printTable(base bianchi.Params, maxHidden, maxContenders int) {
	tbl := bianchi.NewAdaptationTable(base, maxHidden, maxContenders, nil, nil)
	fmt.Println("adaptation table: best (CW, payload bytes) per (hidden terminals, contenders)")
	fmt.Printf("%-6s", "h\\c")
	for c := 0; c <= maxContenders; c++ {
		fmt.Printf("%14d", c)
	}
	fmt.Println()
	for h := 0; h <= maxHidden; h++ {
		fmt.Printf("%-6d", h)
		for c := 0; c <= maxContenders; c++ {
			s := tbl.Lookup(h, c)
			fmt.Printf("%14s", fmt.Sprintf("(%d,%d)", s.W, s.PayloadBytes))
		}
		fmt.Println()
	}
}
