package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestValidateFlagsHTTPAddr locks in fail-fast -http validation: the flag
// must be a listen address net.Listen would accept, checked before any
// simulator state is built, consistent with the other flag checks.
func TestValidateFlagsHTTPAddr(t *testing.T) {
	ok := []string{"", ":8080", ":0", "127.0.0.1:0", "localhost:9000", "[::1]:8080"}
	for _, addr := range ok {
		if _, err := validateFlags(time.Second, 0, 0, 0, 0, 0, "", addr); err != nil {
			t.Errorf("validateFlags(http=%q) = %v, want ok", addr, err)
		}
	}
	bad := []string{"nonsense", "127.0.0.1", "8080", "host:port:extra"}
	for _, addr := range bad {
		_, err := validateFlags(time.Second, 0, 0, 0, 0, 0, "", addr)
		if err == nil {
			t.Errorf("validateFlags(http=%q) accepted, want error", addr)
			continue
		}
		if !strings.Contains(err.Error(), "-http") {
			t.Errorf("validateFlags(http=%q) error %q does not name the flag", addr, err)
		}
	}
}

// TestValidateFlagsExisting keeps the pre-existing range checks intact with
// the widened signature.
func TestValidateFlagsExisting(t *testing.T) {
	if _, err := validateFlags(0, 0, 0, 0, 0, 0, "", ""); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := validateFlags(time.Second, -time.Millisecond, 0, 0, 0, 0, "", ""); err == nil {
		t.Error("negative slice accepted")
	}
	if _, err := validateFlags(time.Second, 0, 0, 0, 0, 0, "bogus-kind:", ""); err == nil {
		t.Error("bad fault spec accepted")
	}
	spec, err := validateFlags(time.Second, 0, 0, 0, 0, 0, "locloss:p=0.5", "")
	if err != nil || spec == nil {
		t.Errorf("valid fault spec rejected: %v", err)
	}
}

// TestValidateRemoteFlags pins the control-plane flag contract: every
// invalid combination fails fast with an error naming the flag to fix, and
// the two fault flags partition the fault kinds.
func TestValidateRemoteFlags(t *testing.T) {
	parse := func(s string) *faults.Spec {
		t.Helper()
		spec, err := faults.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	cases := []struct {
		name      string
		protocol  string
		remote    bool
		rpcSpec   string
		faultSpec *faults.Spec
		wantErr   string // empty = ok
	}{
		{"plain-comap", "comap", false, "", nil, ""},
		{"remote-no-faults", "comap", true, "", nil, ""},
		{"remote-with-rpc-faults", "comap", true, "rpcloss:p=0.2", nil, ""},
		{"remote-full-chaos", "comap", true,
			"rpcdelay:d=2ms,at=1s,dur=500ms;rpcrestart:at=2s,dur=300ms", parse("churn:node=2,at=1s,dur=300ms"), ""},
		{"remote-on-dcf", "dcf", true, "", nil, "-comap-remote requires -protocol comap"},
		{"rpc-faults-without-remote", "comap", false, "rpcloss:p=0.2", nil, "-rpc-faults requires -comap-remote"},
		{"rpc-kind-in-faults", "comap", true, "", parse("rpcloss:p=0.2"), "belong in -rpc-faults"},
		{"station-kind-in-rpc-faults", "comap", true, "locloss:p=0.2", nil, "only rpc fault kinds"},
		{"garbage-rpc-spec", "comap", true, "bogus-kind:", nil, "bad -rpc-faults spec"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, err := validateRemoteFlags(c.protocol, c.remote, c.rpcSpec, c.faultSpec)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if (spec != nil) != (c.rpcSpec != "") {
					t.Fatalf("spec = %v for rpc flag %q", spec, c.rpcSpec)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid combination accepted")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestValidateProfileFlags checks the profiler knobs are rejected without
// -profile and accepted with it (including the disable sentinel).
func TestValidateProfileFlags(t *testing.T) {
	for _, c := range []struct {
		profile bool
		flight  int
		out     string
		ok      bool
	}{
		{false, 0, "", true},
		{true, 0, "", true},
		{true, 8192, "a.json", true},
		{true, -1, "", true},
		{false, 4096, "", false},
		{false, -1, "", false},
		{false, 0, "a.json", false},
	} {
		err := validateProfileFlags(c.profile, c.flight, c.out)
		if (err == nil) != c.ok {
			t.Errorf("validateProfileFlags(%v, %d, %q) = %v, want ok=%v",
				c.profile, c.flight, c.out, err, c.ok)
		}
	}
}

// TestValidateCityFlags pins the city-topology flag contract: sizing and
// trace flags demand -topology city, and the ranges fail fast with errors
// naming the flag.
func TestValidateCityFlags(t *testing.T) {
	for _, c := range []struct {
		name     string
		topo     string
		stations int
		world    float64
		trace    string
		wantErr  string
	}{
		{"defaults elsewhere", "et", 1000, 3000, "", ""},
		{"city defaults", "city", 1000, 3000, "", ""},
		{"city sized", "city", 250, 1500, "", ""},
		{"city with trace", "city", 1000, 3000, "walk.loc", ""},
		{"stations without city", "et", 64, 3000, "", "-topology city"},
		{"world without city", "large", 1000, 500, "", "-topology city"},
		{"trace without city", "fig7", 1000, 3000, "walk.loc", "-topology city"},
		{"zero stations", "city", 0, 3000, "", "-stations"},
		{"negative world", "city", 1000, -1, "", "-world"},
	} {
		t.Run(c.name, func(t *testing.T) {
			err := validateCityFlags(c.topo, c.stations, c.world, c.trace)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("bad combination accepted")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not name %q", err, c.wantErr)
			}
		})
	}
}

// TestBuildTopologyCity checks the city branch wires the generator, the
// shard world and the city regime default, and surfaces generator errors.
func TestBuildTopologyCity(t *testing.T) {
	top, regime, err := buildTopology("city", 0, "", 0, 0, 120, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if regime != "city" {
		t.Fatalf("default regime %q, want city", regime)
	}
	if top.World == nil {
		t.Fatal("city topology missing the shard world grid")
	}
	if _, _, err := buildTopology("city", 0, "", 0, 0, 10, -3, 5); err == nil {
		t.Fatal("negative world size accepted by the generator")
	}
}

// TestLoadCityTraceSynthesizesAndParses covers both trace sources.
func TestLoadCityTraceSynthesizesAndParses(t *testing.T) {
	top, _, err := buildTopology("city", 0, "", 0, 0, 80, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := loadCityTrace("", top, 5, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("synthesized trace is empty")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "walk.loc")
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := loadCityTrace(path, top, 5, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("reparsed %d events, wrote %d", len(back.Events), len(tr.Events))
	}
	if _, err := loadCityTrace(filepath.Join(dir, "missing.loc"), top, 5, time.Second); err == nil {
		t.Fatal("missing trace file accepted")
	}
	if err := os.WriteFile(path, []byte("1s teleport 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCityTrace(path, top, 5, time.Second); err == nil {
		t.Fatal("malformed trace file accepted")
	}
}
