package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateFlagsHTTPAddr locks in fail-fast -http validation: the flag
// must be a listen address net.Listen would accept, checked before any
// simulator state is built, consistent with the other flag checks.
func TestValidateFlagsHTTPAddr(t *testing.T) {
	ok := []string{"", ":8080", ":0", "127.0.0.1:0", "localhost:9000", "[::1]:8080"}
	for _, addr := range ok {
		if _, err := validateFlags(time.Second, 0, 0, 0, 0, 0, "", addr); err != nil {
			t.Errorf("validateFlags(http=%q) = %v, want ok", addr, err)
		}
	}
	bad := []string{"nonsense", "127.0.0.1", "8080", "host:port:extra"}
	for _, addr := range bad {
		_, err := validateFlags(time.Second, 0, 0, 0, 0, 0, "", addr)
		if err == nil {
			t.Errorf("validateFlags(http=%q) accepted, want error", addr)
			continue
		}
		if !strings.Contains(err.Error(), "-http") {
			t.Errorf("validateFlags(http=%q) error %q does not name the flag", addr, err)
		}
	}
}

// TestValidateFlagsExisting keeps the pre-existing range checks intact with
// the widened signature.
func TestValidateFlagsExisting(t *testing.T) {
	if _, err := validateFlags(0, 0, 0, 0, 0, 0, "", ""); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := validateFlags(time.Second, -time.Millisecond, 0, 0, 0, 0, "", ""); err == nil {
		t.Error("negative slice accepted")
	}
	if _, err := validateFlags(time.Second, 0, 0, 0, 0, 0, "bogus-kind:", ""); err == nil {
		t.Error("bad fault spec accepted")
	}
	spec, err := validateFlags(time.Second, 0, 0, 0, 0, 0, "locloss:p=0.5", "")
	if err != nil || spec == nil {
		t.Errorf("valid fault spec rejected: %v", err)
	}
}

// TestValidateProfileFlags checks the profiler knobs are rejected without
// -profile and accepted with it (including the disable sentinel).
func TestValidateProfileFlags(t *testing.T) {
	for _, c := range []struct {
		profile bool
		flight  int
		out     string
		ok      bool
	}{
		{false, 0, "", true},
		{true, 0, "", true},
		{true, 8192, "a.json", true},
		{true, -1, "", true},
		{false, 4096, "", false},
		{false, -1, "", false},
		{false, 0, "a.json", false},
	} {
		err := validateProfileFlags(c.profile, c.flight, c.out)
		if (err == nil) != c.ok {
			t.Errorf("validateProfileFlags(%v, %d, %q) = %v, want ok=%v",
				c.profile, c.flight, c.out, err, c.ok)
		}
	}
}
