// Command comap-sim runs one scenario of the CO-MAP simulator and prints
// per-flow goodput and per-station MAC statistics:
//
//	comap-sim -topology et -pos 28 -protocol comap -duration 5s
//	comap-sim -topology roles -roles chh -protocol dcf
//	comap-sim -topology fig7 -contenders 5 -hidden 3 -cw 255
//	comap-sim -topology large -protocol comap -cbr 3000000 -poserr 10
//	comap-sim -topology et -profile -profile-out results/profiles/et.json
//	comap-sim -topology city -stations 1000 -protocol dcf -duration 2s
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/bianchi"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "comap-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topoName    = flag.String("topology", "et", "et | roles | fig7 | large | city")
		stations    = flag.Int("stations", 1000, "city: number of client stations")
		world       = flag.Float64("world", 3000, "city: square world edge length in meters")
		cityTrace   = flag.String("city-trace", "", "city: replay this .loc mobility/churn trace (default: synthesize one from -seed)")
		pos         = flag.Float64("pos", 28, "et: C2 distance from AP1 (m)")
		roles       = flag.String("roles", "chh", "roles: per-client roles, letters from c/h/i")
		contenders  = flag.Int("contenders", 5, "fig7: number of contenders")
		hidden      = flag.Int("hidden", 3, "fig7: number of hidden terminals")
		protocol    = flag.String("protocol", "comap", "dcf | comap")
		regime      = flag.String("regime", "", "testbed | ns2 (default: testbed for et, ns2 otherwise)")
		duration    = flag.Duration("duration", 5*time.Second, "simulated duration")
		seed        = flag.Int64("seed", 1, "random seed")
		payload     = flag.Int("payload", 0, "payload bytes (0 = regime default)")
		cbr         = flag.Float64("cbr", 0, "offered load per flow in bits/s (0 = saturated)")
		posErr      = flag.Float64("poserr", 0, "position error range in meters")
		cw          = flag.Int("cw", 0, "fixed contention window in slots (0 = regime default)")
		adapt       = flag.Bool("adapt", true, "comap: enable hidden-terminal packet-size/CW adaptation")
		tracePath   = flag.String("trace", "", "write a JSONL frame-lifecycle event trace to this file")
		traceEnergy = flag.Bool("trace-energy", false, "also trace per-node energy changes (verbose)")
		reportPath  = flag.String("report", "", "write a JSON run report to this file")
		slice       = flag.Duration("slice", 0, "goodput time-slice interval for the report (0 = no slicing)")
		faultSpec   = flag.String("faults", "", `fault-injection spec, e.g. "locloss:p=0.3;outage:node=2,at=1s,dur=500ms"`)
		comapRemote = flag.Bool("comap-remote", false, "comap: route verdicts through the mapsvc control plane (deterministic in-process transport)")
		rpcFaults   = flag.String("rpc-faults", "", `control-plane RPC fault spec (requires -comap-remote), e.g. "rpcloss:p=0.2,at=1s,dur=500ms;rpcrestart:at=2s,dur=300ms"`)
		httpAddr    = flag.String("http", "", `serve the live observability plane on this address, e.g. ":8080" (metrics, health, runs, pprof)`)
		profile     = flag.Bool("profile", false, "attach the subsystem profiler and print per-tag attribution after the run")
		flightN     = flag.Int("flight", 0, "with -profile: flight-recorder ring capacity, rounded up to a power of two (0 = default 4096, negative disables)")
		profileOut  = flag.String("profile-out", "", "with -profile: also write the attribution JSON to this file")
		auditPath   = flag.String("audit", "", "write a determinism-ledger JSONL (run manifest + per-slice state hashes) to this file")
	)
	flag.Parse()

	spec, err := validateFlags(*duration, *slice, *posErr, *cbr, *payload, *cw, *faultSpec, *httpAddr)
	if err != nil {
		return err
	}
	if err := validateProfileFlags(*profile, *flightN, *profileOut); err != nil {
		return err
	}
	rpcSpec, err := validateRemoteFlags(*protocol, *comapRemote, *rpcFaults, spec)
	if err != nil {
		return err
	}
	if err := validateCityFlags(*topoName, *stations, *world, *cityTrace); err != nil {
		return err
	}

	top, defaultRegime, err := buildTopology(*topoName, *pos, *roles, *contenders, *hidden, *stations, *world, *seed)
	if err != nil {
		return err
	}

	if *regime == "" {
		*regime = defaultRegime
	}
	var opts netsim.Options
	switch *regime {
	case "testbed":
		opts = netsim.TestbedOptions()
	case "ns2":
		opts = netsim.NS2Options()
	case "city":
		opts = netsim.CityOptions()
	default:
		return fmt.Errorf("unknown regime %q", *regime)
	}

	switch *protocol {
	case "dcf":
		opts.Protocol = netsim.ProtocolDCF
	case "comap":
		opts.Protocol = netsim.ProtocolComap
		if *adapt {
			base := bianchi.FromPHY(opts.PHY, opts.PHY.LowestRate())
			opts.AdaptTable = bianchi.NewAdaptationTable(base, 5, 8, nil, nil)
		}
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}

	opts.Seed = *seed
	opts.Duration = *duration
	opts.Faults = spec
	opts.ComapRemote = *comapRemote
	opts.RPCFaults = rpcSpec
	opts.CBRBitsPerSec = *cbr
	opts.PositionErrorMeters = *posErr
	if *payload > 0 {
		opts.PayloadBytes = *payload
	}
	if *cw > 0 {
		opts.FixedCW = *cw
	}
	if *profile {
		opts.Profile = &prof.Config{FlightEvents: *flightN}
	}

	var (
		auditFile *os.File
		auditBuf  *bufio.Writer
	)
	if *auditPath != "" {
		auditFile, err = os.Create(*auditPath)
		if err != nil {
			return err
		}
		// Like traces, ledgers are written one JSON line per slice; buffer so
		// the sink never stalls the event loop on small writes.
		auditBuf = bufio.NewWriterSize(auditFile, 1<<20)
		opts.Audit = &netsim.AuditConfig{
			Scenario: fmt.Sprintf("%s/%s", *topoName, *protocol),
			Config:   audit.Config{Sink: auditBuf},
		}
	}

	var (
		traceFile *os.File
		traceBuf  *bufio.Writer
		traceW    *trace.Writer
	)
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			return err
		}
		// Traces run to hundreds of thousands of events; buffering turns
		// per-event writes into large sequential ones.
		traceBuf = bufio.NewWriterSize(traceFile, 1<<20)
		traceW = trace.NewWriter(traceBuf)
		opts.Trace = traceW
		opts.TraceEnergy = *traceEnergy
	}

	n, err := netsim.Build(top, opts)
	if err != nil {
		return err
	}
	if *topoName == "city" {
		tr, err := loadCityTrace(*cityTrace, top, *seed, *duration)
		if err != nil {
			return err
		}
		if err := n.ScheduleLocTrace(tr); err != nil {
			return err
		}
		fmt.Printf("scheduled %d .loc trace events\n", len(tr.Events))
	}
	n.StartSlicing(*slice)

	var admin *obs.Server
	if *httpAddr != "" {
		admin = obs.NewServer(obs.Options{})
		obs.AttachNetwork(admin, top.Name, n)
		addr, err := admin.Start(*httpAddr)
		if err != nil {
			return fmt.Errorf("starting -http server: %w", err)
		}
		defer admin.Close()
		fmt.Printf("observability plane on http://%s (endpoints: /metrics /healthz /runs /debug/pprof/)\n", addr)
	}

	res := n.Run()
	if auditFile != nil {
		if err := n.Audit.Err(); err != nil {
			auditFile.Close()
			return fmt.Errorf("writing audit ledger %s: %w", *auditPath, err)
		}
		if err := auditBuf.Flush(); err != nil {
			auditFile.Close()
			return fmt.Errorf("flushing audit ledger %s: %w", *auditPath, err)
		}
		if err := auditFile.Close(); err != nil {
			return fmt.Errorf("closing audit ledger %s: %w", *auditPath, err)
		}
	}
	if traceW != nil {
		// Surface buffered-write, flush and close failures instead of
		// silently reporting a truncated trace as success.
		if err := traceW.Err(); err != nil {
			traceFile.Close()
			return fmt.Errorf("writing trace %s: %w", *tracePath, err)
		}
		if err := traceBuf.Flush(); err != nil {
			traceFile.Close()
			return fmt.Errorf("flushing trace %s: %w", *tracePath, err)
		}
		if err := traceFile.Close(); err != nil {
			return fmt.Errorf("closing trace %s: %w", *tracePath, err)
		}
	}

	fmt.Printf("topology %s, protocol %v, %v simulated\n", top.Name, opts.Protocol, opts.Duration)
	res.PrintFlows(os.Stdout)
	fmt.Println()
	n.Summarize().Print(os.Stdout)
	fmt.Println()

	ids := make([]int, 0, len(n.Stations))
	for id := range n.Stations {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := n.Stations[frame.NodeID(id)]
		snap := st.MAC.Stats().Snapshot()
		if len(snap) == 0 {
			continue
		}
		fmt.Printf("station %d:", id)
		names := st.MAC.Stats().Names()
		for _, name := range names {
			fmt.Printf(" %s=%d", name, snap[name])
		}
		fmt.Println()
	}

	if *profile {
		a := n.Prof.Attribution()
		printAttribution(os.Stdout, a)
		if *profileOut != "" {
			if err := writeAttribution(*profileOut, a); err != nil {
				return fmt.Errorf("writing profile %s: %w", *profileOut, err)
			}
			fmt.Printf("wrote attribution to %s\n", *profileOut)
		}
	}

	if traceW != nil {
		fmt.Printf("wrote %d trace events to %s\n", traceW.Count(), *tracePath)
	}
	if auditFile != nil {
		head := n.Audit.Head()
		fmt.Printf("wrote audit ledger to %s (%d slices, head %s)\n", *auditPath, head.Slices, head.Head)
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			return err
		}
		if err := n.Report(res).WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("writing report %s: %w", *reportPath, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing report %s: %w", *reportPath, err)
		}
		fmt.Printf("wrote run report to %s\n", *reportPath)
	}
	return nil
}

// validateFlags checks the value ranges that flag parsing alone cannot and
// parses the fault specification (nil when empty). It runs before any
// simulator state is built so a bad invocation fails fast with a message
// naming the offending flag.
func validateFlags(duration, slice time.Duration, posErr, cbr float64, payload, cw int, faultSpec, httpAddr string) (*faults.Spec, error) {
	if httpAddr != "" {
		if _, _, err := net.SplitHostPort(httpAddr); err != nil {
			return nil, fmt.Errorf(`bad -http address %q (want host:port, e.g. ":8080"): %w`, httpAddr, err)
		}
	}
	if duration <= 0 {
		return nil, fmt.Errorf("-duration must be positive, got %v", duration)
	}
	if slice < 0 {
		return nil, fmt.Errorf("-slice must be >= 0, got %v", slice)
	}
	if posErr < 0 {
		return nil, fmt.Errorf("-poserr must be >= 0, got %g", posErr)
	}
	if cbr < 0 {
		return nil, fmt.Errorf("-cbr must be >= 0, got %g", cbr)
	}
	if payload < 0 {
		return nil, fmt.Errorf("-payload must be >= 0, got %d", payload)
	}
	if cw < 0 {
		return nil, fmt.Errorf("-cw must be >= 0, got %d", cw)
	}
	spec, err := faults.Parse(faultSpec)
	if err != nil {
		return nil, fmt.Errorf("bad -faults spec: %w", err)
	}
	return spec, nil
}

// validateRemoteFlags checks the control-plane knobs: -comap-remote only
// makes sense under the CO-MAP protocol, -rpc-faults only with a control
// plane to fault, and the two fault flags partition the fault kinds — rpc
// kinds target the control-plane transport, everything else targets
// stations. Each violation names the flag to fix.
func validateRemoteFlags(protocol string, remote bool, rpcFaultSpec string, faultSpec *faults.Spec) (*faults.Spec, error) {
	if faultSpec.HasRPC() {
		return nil, fmt.Errorf("-faults contains rpc fault kinds; control-plane faults belong in -rpc-faults")
	}
	if remote && protocol != "comap" {
		return nil, fmt.Errorf("-comap-remote requires -protocol comap (got %q)", protocol)
	}
	if rpcFaultSpec == "" {
		return nil, nil
	}
	if !remote {
		return nil, fmt.Errorf("-rpc-faults requires -comap-remote (there is no control plane to fault)")
	}
	spec, err := faults.Parse(rpcFaultSpec)
	if err != nil {
		return nil, fmt.Errorf("bad -rpc-faults spec: %w", err)
	}
	if spec.HasNonRPC() {
		return nil, fmt.Errorf("-rpc-faults accepts only rpc fault kinds (rpcloss, rpcdelay, rpcpartition, rpcrestart); station faults belong in -faults")
	}
	return spec, nil
}

// validateCityFlags checks the city-topology knobs: the sizing and trace
// flags only make sense with -topology city, the station count must be
// positive and the world edge positive and finite. Each violation names the
// flag to fix; topology.CityScale re-validates the derived geometry (annulus
// vs AP cell, grid orders) with its own descriptive errors.
func validateCityFlags(topoName string, stations int, world float64, cityTrace string) error {
	if topoName != "city" {
		if stations != 1000 || world != 3000 || cityTrace != "" {
			return fmt.Errorf("-stations, -world and -city-trace require -topology city")
		}
		return nil
	}
	if stations < 1 {
		return fmt.Errorf("-stations must be >= 1, got %d", stations)
	}
	if world <= 0 {
		return fmt.Errorf("-world must be positive, got %g", world)
	}
	return nil
}

// loadCityTrace parses the -city-trace file, or synthesizes a deterministic
// trace spanning the run when none was given.
func loadCityTrace(path string, top topology.Topology, seed int64, duration time.Duration) (*topology.LocTrace, error) {
	if path == "" {
		return topology.SynthesizeCityTrace(top, rand.New(rand.NewSource(seed)), topology.CityTraceConfig{Duration: duration}), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening -city-trace: %w", err)
	}
	defer f.Close()
	tr, err := topology.ParseLocTrace(f)
	if err != nil {
		return nil, fmt.Errorf("bad -city-trace %s: %w", path, err)
	}
	return tr, nil
}

// validateProfileFlags rejects profiler knobs without -profile, so a typo
// like a lone -flight fails fast instead of silently doing nothing.
func validateProfileFlags(profile bool, flight int, out string) error {
	if !profile && (flight != 0 || out != "") {
		return fmt.Errorf("-flight and -profile-out require -profile")
	}
	return nil
}

// printAttribution renders the per-subsystem attribution as a table, busiest
// subsystem first, skipping tags that saw no events.
func printAttribution(w io.Writer, a prof.Attribution) {
	fmt.Fprintf(w, "\nsubsystem attribution (%d events, %.3f s sampled wall time, stride %d):\n",
		a.Events, a.SampledSec, a.SampleEvery)
	tags := make([]prof.TagStat, 0, len(a.Tags))
	for _, t := range a.Tags {
		if t.Events > 0 {
			tags = append(tags, t)
		}
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i].Events > tags[j].Events })
	fmt.Fprintf(w, "  %-16s %12s %12s %8s\n", "tag", "events", "wall", "share")
	for _, t := range tags {
		fmt.Fprintf(w, "  %-16s %12d %10.4f s %7.1f%%\n", t.Tag, t.Events, t.SampledSec, t.SharePct)
	}
}

// writeAttribution writes the attribution as indented JSON (the same layout
// /profile serves and comap-bench artifacts embed).
func writeAttribution(path string, a prof.Attribution) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func buildTopology(name string, pos float64, roleStr string, contenders, hidden, stations int, world float64, seed int64) (topology.Topology, string, error) {
	switch name {
	case "et":
		return topology.ETSweep(pos), "testbed", nil
	case "roles":
		var roles []topology.Role
		for _, c := range roleStr {
			switch c {
			case 'c':
				roles = append(roles, topology.RoleContender)
			case 'h':
				roles = append(roles, topology.RoleHidden)
			case 'i':
				roles = append(roles, topology.RoleIndependent)
			default:
				return topology.Topology{}, "", fmt.Errorf("bad role letter %q (use c/h/i)", c)
			}
		}
		return topology.HTRoles(roles), "ns2", nil
	case "fig7":
		return topology.Fig7(contenders, hidden), "ns2", nil
	case "large":
		return topology.LargeScale(rand.New(rand.NewSource(seed))), "ns2", nil
	case "city":
		cfg := topology.DefaultCityConfig(stations, seed)
		cfg.WorldMeters = world
		top, err := topology.CityScale(cfg)
		if err != nil {
			return topology.Topology{}, "", err
		}
		return top, "city", nil
	default:
		return topology.Topology{}, "", fmt.Errorf("unknown topology %q", name)
	}
}
