package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/benchscn"
)

// writeFixture writes a minimal valid artifact with the given per-scenario
// ns/op values.
func writeFixture(t *testing.T, path string, nsPerOp map[string]float64) {
	t.Helper()
	a := newArtifact(true, 200*time.Millisecond)
	for name, ns := range nsPerOp {
		a.add(name, measurement{Iters: 10, NsPerOp: ns, AllocsPerOp: 1, BytesPerOp: 64})
	}
	if err := a.write(path); err != nil {
		t.Fatal(err)
	}
}

// TestDiffExitCodes is the regression-gate contract: an injected slowdown
// past the threshold exits non-zero, one within the threshold (or behind
// -warn-only) exits zero.
func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	writeFixture(t, oldPath, map[string]float64{
		"bianchi-goodput":  100,
		"simulator-second": 1e6,
		"gone-scenario":    50,
	})

	cases := []struct {
		name string
		new  map[string]float64
		args []string
		want int
	}{
		{"regression fails", map[string]float64{"bianchi-goodput": 160, "simulator-second": 1e6}, nil, 1},
		{"within threshold passes", map[string]float64{"bianchi-goodput": 105, "simulator-second": 1.05e6}, nil, 0},
		{"improvement passes", map[string]float64{"bianchi-goodput": 60, "simulator-second": 0.5e6}, nil, 0},
		{"tight threshold fails", map[string]float64{"bianchi-goodput": 115, "simulator-second": 1e6}, []string{"-threshold", "5"}, 1},
		{"warn-only forces zero", map[string]float64{"bianchi-goodput": 300, "simulator-second": 1e6}, []string{"-warn-only"}, 0},
		{"new scenario ignored", map[string]float64{"bianchi-goodput": 100, "simulator-second": 1e6, "brand-new": 42}, nil, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newPath := filepath.Join(t.TempDir(), "new.json")
			writeFixture(t, newPath, tc.new)
			var out, errBuf bytes.Buffer
			code := realMain(append([]string{"diff"}, append(tc.args, oldPath, newPath)...), &out, &errBuf)
			if code != tc.want {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.want, out.String(), errBuf.String())
			}
			if !strings.Contains(out.String(), "gone-scenario") {
				t.Fatalf("missing-scenario note absent:\n%s", out.String())
			}
		})
	}
}

// TestDiffRejectsBadInput covers usage and schema errors (exit 2, never a
// silent pass).
func TestDiffRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	writeFixture(t, good, map[string]float64{"x": 1})
	badSchema := filepath.Join(dir, "bad.json")
	if err := writeFile(badSchema, `{"schema":"other/9","results":[]}`); err != nil {
		t.Fatal(err)
	}

	for _, args := range [][]string{
		{"diff", good}, // missing NEW
		{"diff", good, filepath.Join(dir, "absent")}, // unreadable
		{"diff", badSchema, good},                    // wrong schema
		{"diff", "-threshold", "-3", good, good},     // bad threshold
	} {
		var out, errBuf bytes.Buffer
		if code := realMain(args, &out, &errBuf); code != 2 {
			t.Fatalf("%v: exit = %d, want 2\nstderr:\n%s", args, code, errBuf.String())
		}
	}
}

// TestBenchEmitsValidArtifact runs the real harness on the cheapest
// scenario and validates the artifact schema end to end.
func TestBenchEmitsValidArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"-quick", "-mintime", "5ms", "-run", "^bianchi-goodput$", "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr:\n%s", code, stderr.String())
	}
	a, err := readArtifact(out)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != artifactSchema || !a.Quick || a.GoVersion == "" {
		t.Fatalf("artifact header = %+v", a)
	}
	if a.Attribution == nil || a.Attribution.Events == 0 || len(a.Attribution.Tags) == 0 {
		t.Fatalf("attribution block missing or empty: %+v", a.Attribution)
	}
	if a.Manifest == nil || a.Manifest.OptionsFP == "" || a.Manifest.TopologyHash == "" ||
		a.Manifest.Version == "" || a.Manifest.GoVersion == "" {
		t.Fatalf("manifest block missing or incomplete: %+v", a.Manifest)
	}
	if len(a.Results) != 1 || a.Results[0].Name != "bianchi-goodput" {
		t.Fatalf("results = %+v", a.Results)
	}
	r := a.Results[0]
	if r.Iters <= 0 || r.NsPerOp <= 0 {
		t.Fatalf("empty measurement: %+v", r)
	}
	// The artifact must diff cleanly against itself.
	var diffOut bytes.Buffer
	if code := realMain([]string{"diff", out, out}, &diffOut, &stderr); code != 0 {
		t.Fatalf("self-diff exit = %d:\n%s", code, diffOut.String())
	}
	if !strings.Contains(diffOut.String(), "no regressions") {
		t.Fatalf("self-diff output:\n%s", diffOut.String())
	}
}

// TestDiffAcceptsVersion1Artifacts pins the cross-schema contract: CI diffs
// fresh (version 2, with attribution) artifacts against the checked-in
// version-1 baseline, so readArtifact must accept both while still
// rejecting foreign schemas.
func TestDiffAcceptsVersion1Artifacts(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old_v1.json")
	if err := writeFile(oldPath, `{
  "schema": "comap-bench/1",
  "quick": true,
  "min_time_ms": 200,
  "go_version": "go0.0",
  "results": [
    {"name": "bianchi-goodput", "iters": 10, "ns_per_op": 100, "allocs_per_op": 1, "bytes_per_op": 64}
  ]
}`); err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(dir, "new_v2.json")
	writeFixture(t, newPath, map[string]float64{"bianchi-goodput": 101})

	var out, errBuf bytes.Buffer
	if code := realMain([]string{"diff", oldPath, newPath}, &out, &errBuf); code != 0 {
		t.Fatalf("v1-vs-v2 diff exit = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("diff output:\n%s", out.String())
	}
}

// TestBenchRejectsBadFlags mirrors comap-sim's fail-fast validation.
func TestBenchRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-run", "("},          // bad regexp
		{"-mintime", "-1s"},    // negative mintime
		{"stray-positional"},   // not a subcommand
		{"-run", "no-such-x*"}, // matches nothing -> exit 1
	} {
		var out, errBuf bytes.Buffer
		if code := realMain(args, &out, &errBuf); code == 0 {
			t.Fatalf("%v: exit 0, want non-zero\nstderr:\n%s", args, errBuf.String())
		}
	}
}

// TestMeasureCountsAllocations sanity-checks the harness itself.
func TestMeasureCountsAllocations(t *testing.T) {
	var sink []byte
	m, err := measure(func() (benchscn.Metrics, error) {
		sink = make([]byte, 1024)
		return benchscn.Metrics{"x": float64(len(sink))}, nil
	}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if m.Iters <= 0 || m.NsPerOp <= 0 {
		t.Fatalf("measurement = %+v", m)
	}
	if m.BytesPerOp < 1024 {
		t.Fatalf("bytes/op = %g, want >= 1024", m.BytesPerOp)
	}
	if m.Metrics["x"] != 1024 {
		t.Fatalf("metrics not propagated: %+v", m.Metrics)
	}
}

// TestListPrintsScenarios keeps `comap-bench list` wired to the registry.
func TestListPrintsScenarios(t *testing.T) {
	var out bytes.Buffer
	if code := realMain([]string{"list"}, &out, &out); code != 0 {
		t.Fatalf("list exit = %d", code)
	}
	for _, want := range []string{"fig1-exposed-terminal-sweep", "simulator-second", "ablation-dcf-baseline"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
