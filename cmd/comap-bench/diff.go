package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
)

// runDiff compares two artifacts' ns/op by scenario name and fails (exit 1)
// when any scenario slowed down by more than the threshold, unless
// -warn-only downgrades regressions to warnings.
func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("comap-bench diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold = fs.Float64("threshold", 10, "fail when ns/op grows by more than this percentage")
		warnOnly  = fs.Bool("warn-only", false, "report regressions but always exit 0")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: comap-bench diff [-threshold pct] [-warn-only] OLD.json NEW.json")
		return 2
	}
	if *threshold <= 0 {
		fmt.Fprintf(stderr, "comap-bench diff: -threshold must be > 0, got %g\n", *threshold)
		return 2
	}
	oldArt, err := readArtifact(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "comap-bench diff: %v\n", err)
		return 2
	}
	newArt, err := readArtifact(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "comap-bench diff: %v\n", err)
		return 2
	}

	// Manifest drift (schema 3+): the numbers still compare — the ns/op
	// contract is unchanged — but a fingerprint mismatch means the reference
	// scenario itself moved, which reframes any delta below.
	if om, nm := oldArt.Manifest, newArt.Manifest; om != nil && nm != nil {
		if om.OptionsFP != nm.OptionsFP || om.TopologyHash != nm.TopologyHash {
			fmt.Fprintf(stdout, "note: reference-run manifests differ (options %s vs %s, topology %s vs %s) — deltas may reflect scenario drift, not code\n",
				om.OptionsFP, nm.OptionsFP, om.TopologyHash, nm.TopologyHash)
		}
	}

	oldByName := make(map[string]benchResult, len(oldArt.Results))
	for _, r := range oldArt.Results {
		oldByName[r.Name] = r
	}

	regressions := 0
	fmt.Fprintf(stdout, "%-30s %14s %14s %9s\n", "scenario", "old ns/op", "new ns/op", "delta")
	for _, nr := range newArt.Results {
		or, ok := oldByName[nr.Name]
		delete(oldByName, nr.Name)
		if !ok {
			fmt.Fprintf(stdout, "%-30s %14s %14.0f %9s  (new scenario)\n", nr.Name, "-", nr.NsPerOp, "-")
			continue
		}
		if or.NsPerOp <= 0 {
			fmt.Fprintf(stdout, "%-30s %14.0f %14.0f %9s  (old ns/op not positive, skipped)\n",
				nr.Name, or.NsPerOp, nr.NsPerOp, "-")
			continue
		}
		deltaPct := (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		note := ""
		if deltaPct > *threshold {
			regressions++
			note = fmt.Sprintf("  REGRESSION (> %g%%)", *threshold)
		}
		fmt.Fprintf(stdout, "%-30s %14.0f %14.0f %+8.1f%%%s\n", nr.Name, or.NsPerOp, nr.NsPerOp, deltaPct, note)
	}
	missing := make([]string, 0, len(oldByName))
	for name := range oldByName {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(stdout, "%-30s  (missing from new artifact)\n", name)
	}

	if regressions > 0 {
		verdict := "FAIL"
		if *warnOnly {
			verdict = "WARN (exit 0 forced by -warn-only)"
		}
		fmt.Fprintf(stdout, "%d regression(s) past %g%%: %s\n", regressions, *threshold, verdict)
		if !*warnOnly {
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "no regressions past %g%%\n", *threshold)
	return 0
}
