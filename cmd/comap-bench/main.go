// Command comap-bench is the repository's perf-regression observatory. It
// runs the canonical benchmark scenarios (internal/benchscn — the same
// bodies behind `go test -bench`) outside the testing framework, so CI and
// developers get machine-readable artifacts with stable names:
//
//	comap-bench -quick -out results/bench/BENCH_ci.json
//	comap-bench -run 'fig(8|9)' -mintime 2s
//	comap-bench list
//	comap-bench diff -threshold 25 results/bench/BENCH_seed.json BENCH_ci.json
//
// A run writes one BENCH_<timestamp>.json artifact recording ns/op,
// allocs/op, bytes/op and the domain metrics (goodput in Mbps, CO-MAP gain
// in percent, simulator events/s) per scenario, plus a per-subsystem
// attribution block from one profiled reference run (skip with -noattr).
// `comap-bench diff` compares two artifacts and exits non-zero when any
// scenario slowed down past the threshold, so a perf regression fails the
// pipeline instead of hiding in log noise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"time"

	"repro/internal/benchscn"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "diff":
			return runDiff(args[1:], stdout, stderr)
		case "list":
			return runList(stdout)
		}
	}
	return runBench(args, stdout, stderr)
}

func runList(stdout io.Writer) int {
	for _, s := range benchscn.Scenarios() {
		quick := " "
		if s.Quick {
			quick = "q"
		}
		fmt.Fprintf(stdout, "%s %-30s %s\n", quick, s.Name, s.Desc)
	}
	return 0
}

func runBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("comap-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("out", "", "artifact path (default results/bench/BENCH_<timestamp>.json)")
		quick   = fs.Bool("quick", false, "CI smoke: quick scenario subset at reduced scale")
		minTime = fs.Duration("mintime", 0, "minimum measured time per scenario (default 1s, 200ms with -quick)")
		runPat  = fs.String("run", "", "only scenarios matching this regexp")
		noAttr  = fs.Bool("noattr", false, "skip the profiled attribution run (omit the artifact's attribution block)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "comap-bench: unexpected argument %q (subcommands are `list` and `diff`)\n", fs.Arg(0))
		return 2
	}
	if *minTime < 0 {
		fmt.Fprintf(stderr, "comap-bench: -mintime must be >= 0, got %v\n", *minTime)
		return 2
	}
	if *minTime == 0 {
		*minTime = time.Second
		if *quick {
			*minTime = 200 * time.Millisecond
		}
	}
	var filter *regexp.Regexp
	if *runPat != "" {
		var err error
		if filter, err = regexp.Compile(*runPat); err != nil {
			fmt.Fprintf(stderr, "comap-bench: bad -run pattern: %v\n", err)
			return 2
		}
	}

	scale := benchscn.Default()
	if *quick {
		scale = benchscn.QuickScale()
	}
	art := newArtifact(*quick, *minTime)
	for _, scn := range benchscn.Scenarios() {
		if *quick && !scn.Quick {
			continue
		}
		if filter != nil && !filter.MatchString(scn.Name) {
			continue
		}
		fmt.Fprintf(stderr, "bench %-30s ", scn.Name)
		body, err := scn.Prepare(scale)
		if err != nil {
			fmt.Fprintf(stderr, "prepare: %v\n", err)
			return 1
		}
		m, err := measure(body, *minTime)
		if err != nil {
			fmt.Fprintf(stderr, "run: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "%8d iters  %12.0f ns/op  %8.0f allocs/op\n",
			m.Iters, m.NsPerOp, m.AllocsPerOp)
		art.add(scn.Name, m)
	}
	if len(art.Results) == 0 {
		fmt.Fprintln(stderr, "comap-bench: no scenarios matched")
		return 1
	}

	// One profiled reference run attributes the dispatch loop's events and
	// wall time to subsystems, so a ns/op regression in the artifact can be
	// localized without re-profiling.
	if !*noAttr {
		fmt.Fprintf(stderr, "bench %-30s ", "attribution")
		a, err := benchscn.AttributionRun(scale)
		if err != nil {
			fmt.Fprintf(stderr, "run: %v\n", err)
			return 1
		}
		art.Attribution = &a
		fmt.Fprintf(stderr, "%8d events across %d tags\n", a.Events, len(a.Tags))
	}

	// Stamp the reference-run manifest (same provenance block a determinism
	// ledger starts with) so diffs can separate code regressions from
	// scenario drift. Cheap — pure hashing, no simulation.
	m := benchscn.ReferenceManifest(scale)
	m.FillEnv()
	art.Manifest = &m

	path := *out
	if path == "" {
		ts := time.Now().UTC().Format("20060102T150405Z")
		path = filepath.Join("results", "bench", "BENCH_"+ts+".json")
	}
	if err := art.write(path); err != nil {
		fmt.Fprintf(stderr, "comap-bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %d results to %s\n", len(art.Results), path)
	return 0
}
