package main

import (
	"runtime"
	"time"

	"repro/internal/benchscn"
)

// measurement is the outcome of timing one scenario.
type measurement struct {
	Iters       int
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
	Metrics     benchscn.Metrics
}

// measure runs the scenario body once to warm up, then iterates it until at
// least minTime of measured wall time has accumulated. Allocation counts
// come from the monotonic runtime counters (Mallocs, TotalAlloc), so GC
// activity during the run cannot make them go negative.
func measure(body func() (benchscn.Metrics, error), minTime time.Duration) (measurement, error) {
	metrics, err := body()
	if err != nil {
		return measurement{}, err
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	var elapsed time.Duration
	for elapsed < minTime {
		m, err := body()
		if err != nil {
			return measurement{}, err
		}
		if m != nil {
			metrics = m
		}
		iters++
		elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&after)

	n := float64(iters)
	return measurement{
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		Metrics:     metrics,
	}, nil
}
