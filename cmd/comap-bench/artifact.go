package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/prof"
)

// artifactSchema versions the BENCH_*.json layout; diff refuses artifacts
// with an unknown schema rather than comparing incompatible numbers.
// Version 2 added the attribution block and version 3 the run manifest;
// older artifacts are still read (the ns/op contract is unchanged), so
// diffs against pre-attribution and pre-manifest baselines keep working.
const artifactSchema = "comap-bench/3"

// compatibleSchemas lists every schema readArtifact accepts.
var compatibleSchemas = map[string]bool{
	"comap-bench/1": true,
	"comap-bench/2": true,
	"comap-bench/3": true,
}

// artifact is one machine-readable benchmark run. encoding/json sorts the
// metric maps and results are appended in scenario order, so re-serializing
// the same measurements is byte-stable.
type artifact struct {
	Schema     string        `json:"schema"`
	CreatedUTC string        `json:"created_utc"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Quick      bool          `json:"quick"`
	MinTimeMs  float64       `json:"min_time_ms"`
	Results    []benchResult `json:"results"`
	// Attribution is the per-subsystem event/wall-time breakdown of one
	// profiled reference run (schema 2; absent in version-1 artifacts and
	// with -noattr).
	Attribution *prof.Attribution `json:"attribution,omitempty"`
	// Manifest identifies the attribution reference run — seed, options
	// fingerprint, topology hash, environment — in the same layout a
	// determinism ledger starts with (schema 3; absent in older artifacts).
	// A diff can then distinguish a perf regression from a scenario change.
	Manifest *audit.Manifest `json:"manifest,omitempty"`
}

type benchResult struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func newArtifact(quick bool, minTime time.Duration) *artifact {
	return &artifact{
		Schema:     artifactSchema,
		CreatedUTC: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Quick:      quick,
		MinTimeMs:  float64(minTime) / float64(time.Millisecond),
	}
}

func (a *artifact) add(name string, m measurement) {
	a.Results = append(a.Results, benchResult{
		Name:        name,
		Iters:       m.Iters,
		NsPerOp:     m.NsPerOp,
		AllocsPerOp: m.AllocsPerOp,
		BytesPerOp:  m.BytesPerOp,
		Metrics:     m.Metrics,
	})
}

func (a *artifact) write(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	sort.Slice(a.Results, func(i, j int) bool { return a.Results[i].Name < a.Results[j].Name })
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readArtifact(path string) (*artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !compatibleSchemas[a.Schema] {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, a.Schema, artifactSchema)
	}
	return &a, nil
}
