package main

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// figureStatus is the per-figure progress payload served on /runs when
// -http is set.
type figureStatus struct {
	Figure     string  `json:"figure"`
	State      string  `json:"state"` // pending | running | done | failed
	ElapsedSec float64 `json:"elapsed_sec"`
	Error      string  `json:"error,omitempty"`
}

// figureTracker tracks which figure the experiment sweep is on. It is
// written by the (single) experiment goroutine and read by admin-plane
// scrape goroutines.
type figureTracker struct {
	mu      sync.Mutex
	states  map[string]*figureStatus
	started map[string]time.Time
}

func newFigureTracker() *figureTracker {
	return &figureTracker{
		states:  make(map[string]*figureStatus),
		started: make(map[string]time.Time),
	}
}

// register announces one upcoming figure on the server and returns
// immediately when either side is nil (the -http-off path).
func (t *figureTracker) register(s *obs.Server, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.states[name] = &figureStatus{Figure: name, State: "pending"}
	t.mu.Unlock()
	s.AddRun(name, func() any { return t.status(name) })
}

func (t *figureTracker) status(name string) figureStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.states[name]
	if st == nil {
		return figureStatus{Figure: name, State: "pending"}
	}
	out := *st
	if out.State == "running" {
		out.ElapsedSec = time.Since(t.started[name]).Seconds()
	}
	return out
}

func (t *figureTracker) start(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.states[name].State = "running"
	t.started[name] = time.Now()
}

func (t *figureTracker) finish(name string, err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.states[name]
	st.ElapsedSec = time.Since(t.started[name]).Seconds()
	if err != nil {
		st.State = "failed"
		st.Error = err.Error()
	} else {
		st.State = "done"
	}
}
