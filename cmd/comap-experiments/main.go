// Command comap-experiments regenerates the tables and figures of the
// CO-MAP paper's evaluation (Du & Li, ICDCS 2013):
//
//	comap-experiments -fig all          # everything, quick scale
//	comap-experiments -fig 8 -full      # Fig. 8 at paper scale
//	comap-experiments -fig table1
//
// Output is plain text: one aligned table per figure, with the series the
// paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 1, 2, 7, 8, 9, 10, table1, ablation, rts, overhead or all")
	full := flag.Bool("full", false, "paper-scale runs (slower) instead of quick runs")
	quick := flag.Bool("quick", false, "quick-scale runs (the default; mutually exclusive with -full)")
	workers := flag.Int("workers", 0, "parallel simulation workers per figure (0 = one per CPU, 1 = sequential); any value yields identical output")
	seeds := flag.Int("seeds", 0, "override number of seeds per data point")
	duration := flag.Duration("duration", 0, "override simulated duration per run")
	topologies := flag.Int("topologies", 0, "override number of Fig. 10 topologies")
	svg := flag.String("svg", "", "also render each figure as an SVG into this directory")
	jsonOut := flag.String("json", "results", "write per-figure JSON artifacts into this directory (empty = off)")
	traceDir := flag.String("trace-dir", "", "write per-run JSONL lifecycle traces into this directory (see comap-trace)")
	auditDir := flag.String("audit-dir", "", "write per-run determinism ledgers into this directory (see comap-audit)")
	httpAddr := flag.String("http", "", `serve per-figure progress and pprof on this address, e.g. ":8080"`)
	comapRemote := flag.Bool("comap-remote", false, "route CO-MAP cells' verdicts through the mapsvc control plane (bit-identical without -rpc-faults)")
	rpcFaults := flag.String("rpc-faults", "", `control-plane RPC fault spec for CO-MAP cells (requires -comap-remote), e.g. "rpcloss:p=0.2,at=1s,dur=500ms"`)
	flag.Parse()
	svgDir = *svg
	jsonDir = *jsonOut

	if *quick && *full {
		fmt.Fprintln(os.Stderr, "comap-experiments: -quick and -full are mutually exclusive")
		os.Exit(2)
	}
	opts := experiments.Quick()
	if *full {
		opts = experiments.Full()
	}
	opts.Workers = *workers
	if *seeds > 0 {
		opts.Seeds = *seeds
	}
	if *duration > 0 {
		opts.Duration = *duration
	}
	if *topologies > 0 {
		opts.Topologies = *topologies
	}
	opts.TraceDir = *traceDir
	opts.AuditDir = *auditDir
	opts.ComapRemote = *comapRemote
	if *rpcFaults != "" {
		if !*comapRemote {
			fmt.Fprintln(os.Stderr, "comap-experiments: -rpc-faults requires -comap-remote (there is no control plane to fault)")
			os.Exit(2)
		}
		spec, err := faults.Parse(*rpcFaults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "comap-experiments: bad -rpc-faults spec: %v\n", err)
			os.Exit(2)
		}
		if spec.HasNonRPC() {
			fmt.Fprintln(os.Stderr, "comap-experiments: -rpc-faults accepts only rpc fault kinds (rpcloss, rpcdelay, rpcpartition, rpcrestart)")
			os.Exit(2)
		}
		opts.RPCFaults = spec
	}

	var admin *obs.Server
	if *httpAddr != "" {
		admin = obs.NewServer(obs.Options{})
	}

	if err := run(strings.ToLower(*fig), opts, admin, *httpAddr); err != nil {
		fmt.Fprintln(os.Stderr, "comap-experiments:", err)
		os.Exit(1)
	}
}

// steps lists the figure runners in paper order; run dispatches over it so
// the -http progress tracker sees every selected figure up front.
var steps = []struct {
	name string
	fn   func(experiments.Opts) error
}{
	{"table1", runTable1},
	{"1", runFig1},
	{"2", runFig2},
	{"7", runFig7},
	{"8", runFig8},
	{"9", runFig9},
	{"10", runFig10},
	{"ablation", runAblation},
	{"rts", runRTS},
	{"overhead", runOverhead},
}

func run(fig string, opts experiments.Opts, admin *obs.Server, httpAddr string) error {
	want := func(name string) bool { return fig == "all" || fig == name }

	var selected []string
	for _, st := range steps {
		if want(st.name) {
			selected = append(selected, st.name)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown figure %q", fig)
	}

	var tracker *figureTracker
	if admin != nil {
		tracker = newFigureTracker()
		for _, name := range selected {
			tracker.register(admin, name)
		}
		addr, err := admin.Start(httpAddr)
		if err != nil {
			return fmt.Errorf("starting -http server: %w", err)
		}
		defer admin.Close()
		fmt.Printf("per-figure progress on http://%s/runs (pprof on /debug/pprof/)\n\n", addr)
	}

	for _, st := range steps {
		if !want(st.name) {
			continue
		}
		tracker.start(st.name)
		err := st.fn(opts)
		tracker.finish(st.name, err)
		if err != nil {
			return err
		}
	}
	return nil
}

func runTable1(opts experiments.Opts) error {
	experiments.PrintTableI(os.Stdout)
	writeArtifact("table1", opts, 0, experiments.TableI())
	fmt.Println()
	return nil
}

func header(title string) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

func runFig1(opts experiments.Opts) error {
	header("Fig. 1 — exposed-terminal testbed: C1->AP1 goodput vs C2 position (basic DCF)")
	start := time.Now()
	res, err := experiments.Fig1(opts)
	if err != nil {
		return err
	}
	experiments.PrintSeries(os.Stdout, "C2 pos (m)", res.C1Goodput, res.C2Goodput)
	if err := writeSVG("fig1", lineChart("Fig. 1: exposed-terminal sweep (basic DCF)",
		"C2 position from AP1 (m)", res.C1Goodput, res.C2Goodput)); err != nil {
		return err
	}
	writeArtifact("fig1", opts, time.Since(start), res)
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func runFig2(opts experiments.Opts) error {
	header("Fig. 2 — hidden-terminal testbed: C1->AP1 goodput vs payload size (basic DCF)")
	start := time.Now()
	res, err := experiments.Fig2(opts)
	if err != nil {
		return err
	}
	experiments.PrintSeries(os.Stdout, "payload (B)", res.NoHT, res.OneHT)
	if err := writeSVG("fig2", lineChart("Fig. 2: hidden-terminal payload study (basic DCF)",
		"payload (bytes)", res.NoHT, res.OneHT)); err != nil {
		return err
	}
	writeArtifact("fig2", opts, time.Since(start), res)
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func runFig7(opts experiments.Opts) error {
	header("Fig. 7 — analytical model vs simulation: goodput (Mbps) vs payload, c=5 contenders")
	start := time.Now()
	panels, err := experiments.Fig7(opts)
	if err != nil {
		return err
	}
	for _, p := range panels {
		fmt.Printf("--- %d hidden terminal(s)\n", p.Hidden)
		experiments.PrintSeries(os.Stdout, "payload (B)", append(p.Model, p.Sim...)...)
		if err := writeSVG(fmt.Sprintf("fig7-h%d", p.Hidden),
			lineChart(fmt.Sprintf("Fig. 7: model vs simulation, %d hidden terminal(s)", p.Hidden),
				"payload (bytes)", append(p.Model, p.Sim...)...)); err != nil {
			return err
		}
	}
	writeArtifact("fig7", opts, time.Since(start), panels)
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func runFig8(opts experiments.Opts) error {
	header("Fig. 8 — CO-MAP vs basic DCF across the exposed-terminal sweep")
	start := time.Now()
	res, err := experiments.Fig8(opts)
	if err != nil {
		return err
	}
	experiments.PrintSeries(os.Stdout, "C2 pos (m)", res.DCF, res.Comap)
	if err := writeSVG("fig8", lineChart("Fig. 8: CO-MAP vs DCF, exposed-terminal sweep",
		"C2 position from AP1 (m)", res.DCF, res.Comap)); err != nil {
		return err
	}
	writeArtifact("fig8", opts, time.Since(start), res)
	fmt.Printf("mean aggregate gain where CO-MAP transmitted concurrently: %+.1f%% (paper: +77.5%%)\n", res.ETRegionGainPct)
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func runFig9(opts experiments.Opts) error {
	header("Fig. 9 — hidden-terminal topologies: CDF of C1->AP1 goodput over the 10 role configurations")
	start := time.Now()
	res, err := experiments.Fig9(opts)
	if err != nil {
		return err
	}
	experiments.PrintCDFs(os.Stdout, "Mbps", res.DCF, res.Comap)
	if err := writeSVG("fig9", cdfChart("Fig. 9: hidden-terminal topologies", res.DCF, res.Comap)); err != nil {
		return err
	}
	writeArtifact("fig9", opts, time.Since(start), res)
	fmt.Printf("mean gain: %+.1f%% (paper: +38.5%%)\n", res.MeanGainPct)
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func runFig10(opts experiments.Opts) error {
	header("Fig. 10 — large-scale office floor: CDF of per-link goodput (3 APs, 9 clients, 3 Mbps CBR)")
	start := time.Now()
	res, err := experiments.Fig10(opts)
	if err != nil {
		return err
	}
	experiments.PrintCDFs(os.Stdout, "Mbps", res.DCF, res.Comap, res.ComapErr)
	if err := writeSVG("fig10", cdfChart("Fig. 10: large-scale office floor",
		res.DCF, res.Comap, res.ComapErr)); err != nil {
		return err
	}
	writeArtifact("fig10", opts, time.Since(start), res)
	fmt.Printf("mean gain, perfect positions: %+.1f%% (paper: +38.5%%)\n", res.GainPerfectPct)
	fmt.Printf("mean gain, %d m position error: %+.1f%% (paper: +18.7%%)\n",
		experiments.Fig10PositionError, res.GainErrorPct)
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func runAblation(opts experiments.Opts) error {
	header("Extension — ablation of CO-MAP design choices (ET square at 30 m, aggregate Mbps)")
	start := time.Now()
	res, err := experiments.Ablation(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  %-34s %6.2f\n", "basic DCF", res.DCF)
	fmt.Printf("  %-34s %6.2f\n", "CO-MAP (full)", res.Full)
	fmt.Printf("  %-34s %6.2f\n", "CO-MAP, separate header frame", res.HeaderFrame)
	fmt.Printf("  %-34s %6.2f\n", "CO-MAP, no persistent concurrency", res.NoPersistent)
	fmt.Printf("  %-34s %6.2f\n", "CO-MAP, in-band location exchange", res.InBandLocation)
	writeArtifact("ablation", opts, time.Since(start), res)
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func runRTS(opts experiments.Opts) error {
	header("Extension — hidden-terminal mitigations: DCF vs RTS/CTS vs CO-MAP (3 saturated HTs)")
	start := time.Now()
	res, err := experiments.RTSComparison(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  %-12s %6.3f Mbps\n", "basic DCF", res.DCF)
	fmt.Printf("  %-12s %6.3f Mbps\n", "RTS/CTS", res.RTSCTS)
	fmt.Printf("  %-12s %6.3f Mbps\n", "CO-MAP", res.Comap)
	writeArtifact("rts", opts, time.Since(start), res)
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func runOverhead(opts experiments.Opts) error {
	header("Extension — in-band location exchange overhead (paper §V)")
	start := time.Now()
	res, err := experiments.Overhead(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  oracle positions:  %6.2f Mbps aggregate\n", res.OracleMbps)
	fmt.Printf("  in-band exchange:  %6.2f Mbps aggregate\n", res.InBandMbps)
	fmt.Printf("  beacons: %d frames, %d bytes of airtime\n", res.Beacons, res.BeaconBytes)
	writeArtifact("overhead", opts, time.Since(start), res)
	fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	return nil
}
