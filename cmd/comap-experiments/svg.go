package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/plot"
)

// svgDir is the output directory for -svg (empty = disabled).
var svgDir string

// writeSVG renders a chart into svgDir when enabled.
func writeSVG(name string, c plot.Chart) error {
	if svgDir == "" {
		return nil
	}
	if err := os.MkdirAll(svgDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(svgDir, name+".svg")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.WriteSVG(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// toPlotSeries converts experiment series to plot series.
func toPlotSeries(in ...experiments.Series) []plot.Series {
	out := make([]plot.Series, 0, len(in))
	for _, s := range in {
		ps := plot.Series{Name: s.Name}
		for _, p := range s.Points {
			ps.X = append(ps.X, p.X)
			ps.Y = append(ps.Y, p.Y)
		}
		out = append(out, ps)
	}
	return out
}

// toCDFSeries converts experiment CDFs to step series.
func toCDFSeries(in ...experiments.CDF) []plot.Series {
	out := make([]plot.Series, 0, len(in))
	for _, c := range in {
		ps := plot.Series{Name: c.Name}
		for _, p := range c.Points {
			ps.X = append(ps.X, p.X)
			ps.Y = append(ps.Y, p.F)
		}
		out = append(out, ps)
	}
	return out
}

// lineChart builds a standard goodput line chart.
func lineChart(title, xlabel string, series ...experiments.Series) plot.Chart {
	return plot.Chart{
		Title:  title,
		XLabel: xlabel,
		YLabel: "goodput (Mbps)",
		Series: toPlotSeries(series...),
	}
}

// cdfChart builds a CDF step chart.
func cdfChart(title string, cdfs ...experiments.CDF) plot.Chart {
	return plot.Chart{
		Title:  title,
		XLabel: "goodput (Mbps)",
		YLabel: "empirical CDF",
		Series: toCDFSeries(cdfs...),
		Step:   true,
	}
}
