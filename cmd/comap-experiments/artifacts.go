package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

// jsonDir is the output directory for -json artifacts (empty = disabled).
var jsonDir string

// artifact is the JSON envelope one figure run leaves behind: the run
// configuration, how long it took, and the figure's data series verbatim.
type artifact struct {
	Figure     string           `json:"figure"`
	Opts       experiments.Opts `json:"opts"`
	ElapsedSec float64          `json:"elapsed_sec"`
	Data       any              `json:"data"`
}

// writeArtifact records one figure's result as indented JSON in jsonDir so
// later analysis can query runs without re-simulating. Failures are soft:
// a run whose numbers printed fine should not die on a fileserver hiccup.
func writeArtifact(name string, opts experiments.Opts, elapsed time.Duration, data any) {
	if jsonDir == "" {
		return
	}
	if err := os.MkdirAll(jsonDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "comap-experiments: json dir: %v\n", err)
		return
	}
	path := filepath.Join(jsonDir, name+".json")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comap-experiments: %v\n", err)
		return
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(artifact{
		Figure:     name,
		Opts:       opts,
		ElapsedSec: elapsed.Seconds(),
		Data:       data,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "comap-experiments: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}
