package main

import (
	"flag"
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// runSummary implements the summary subcommand (and the bare-file default).
func runSummary(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := openInput(fs.Args())
	if err != nil {
		return err
	}
	defer in.Close()
	rep, err := analyze(in)
	if err != nil {
		return err
	}
	rep.print(w)
	return nil
}

// linkKey identifies a directed (src, dst) pair.
type linkKey struct {
	src, dst uint16
}

func (k linkKey) String() string { return fmt.Sprintf("%d->%d", k.src, k.dst) }

// linkStats accumulates per-link counters.
type linkStats struct {
	deliveredOK  int
	corrupted    int
	payloadBytes int64
	// ackLatencyMs collects the sender's access latency (enqueue→ACK, from
	// mac.ack events) so the table can report the tail of the link's delay.
	ackLatencyMs []float64
}

// report is the analysis result.
type report struct {
	firstUs, lastUs int64
	runEndUs        int64 // from a run.end marker; 0 in older traces
	events          int
	byKind          map[string]int
	links           map[linkKey]*linkStats
}

// spanUs is the trace's time base for rates: the recorded run duration when
// the trace carries a run.end marker, else the observed event span.
func (r *report) spanUs() int64 {
	if r.runEndUs > 0 {
		return r.runEndUs
	}
	return r.lastUs - r.firstUs
}

// analyze consumes a JSONL trace.
func analyze(r io.Reader) (*report, error) {
	events, err := loadEvents(r)
	if err != nil {
		return nil, err
	}
	return summarize(events), nil
}

// summarize folds decoded events into a report.
func summarize(events []trace.Event) *report {
	rep := &report{
		byKind:  make(map[string]int),
		links:   make(map[linkKey]*linkStats),
		firstUs: -1,
	}
	for _, e := range events {
		rep.events++
		if rep.firstUs < 0 || e.AtMicros < rep.firstUs {
			rep.firstUs = e.AtMicros
		}
		if e.AtMicros > rep.lastUs {
			rep.lastUs = e.AtMicros
		}
		if e.Kind == trace.KindRunEnd && e.AtMicros > rep.runEndUs {
			rep.runEndUs = e.AtMicros
		}
		kind := e.Kind
		if e.FrameKind != "" {
			kind += "/" + e.FrameKind
		}
		rep.byKind[kind]++
		// Per-link data accounting: count only receptions at the intended
		// destination.
		if e.Kind == trace.KindRx && e.FrameKind == "DATA" && e.Node == e.Dst {
			ls := rep.link(e)
			if e.Decoded() {
				ls.deliveredOK++
				ls.payloadBytes += int64(e.Payload)
			} else {
				ls.corrupted++
			}
		}
		// Sender-side access latency: mac.ack events carry the enqueue→ACK
		// elapsed time of the completed frame in DurUs.
		if e.Kind == trace.KindAck && e.DurUs > 0 {
			ls := rep.link(e)
			ls.ackLatencyMs = append(ls.ackLatencyMs, float64(e.DurUs)/1e3)
		}
	}
	return rep
}

// link returns (creating if needed) the stats row for the event's (src, dst).
func (r *report) link(e trace.Event) *linkStats {
	k := linkKey{src: uint16(e.Src), dst: uint16(e.Dst)}
	ls := r.links[k]
	if ls == nil {
		ls = &linkStats{}
		r.links[k] = ls
	}
	return ls
}

// sortedLinks returns the report's link keys in (src, dst) order.
func sortedLinks[V any](m map[linkKey]V) []linkKey {
	links := make([]linkKey, 0, len(m))
	for k := range m {
		links = append(links, k)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].src != links[j].src {
			return links[i].src < links[j].src
		}
		return links[i].dst < links[j].dst
	})
	return links
}

// print renders the report.
func (r *report) print(w io.Writer) {
	spanUs := r.spanUs()
	fmt.Fprintf(w, "%d events over %.3f s\n\n", r.events, float64(spanUs)/1e6)

	fmt.Fprintln(w, "events by kind:")
	kinds := make([]string, 0, len(r.byKind))
	for k := range r.byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-18s %d\n", k, r.byKind[k])
	}

	fmt.Fprintln(w, "\nper-link data receptions (at the intended destination):")
	fmt.Fprintf(w, "  %-12s %10s %10s %12s %12s %12s %12s\n",
		"link", "ok", "corrupt", "loss", "goodput", "p999 lat", "max lat")
	for _, k := range sortedLinks(r.links) {
		ls := r.links[k]
		total := ls.deliveredOK + ls.corrupted
		loss := 0.0
		if total > 0 {
			loss = float64(ls.corrupted) / float64(total)
		}
		goodput := 0.0
		if spanUs > 0 {
			goodput = float64(ls.payloadBytes) * 8 / (float64(spanUs) / 1e6) / 1e6
		}
		p999, max := "-", "-"
		if e := stats.NewECDF(ls.ackLatencyMs); e.N() > 0 {
			if q, err := e.Quantile(0.999); err == nil {
				p999 = fmt.Sprintf("%.3f ms", q)
			}
			if q, err := e.Quantile(1); err == nil {
				max = fmt.Sprintf("%.3f ms", q)
			}
		}
		fmt.Fprintf(w, "  %4d->%-6d %10d %10d %11.1f%% %9.3f Mbps %12s %12s\n",
			k.src, k.dst, ls.deliveredOK, ls.corrupted, loss*100, goodput, p999, max)
	}
}
