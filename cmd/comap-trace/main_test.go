package main

import (
	"strings"
	"testing"
)

const sampleTrace = `{"at_us":100,"node":2,"kind":"rx","frame":"DATA","src":1,"dst":2,"seq":0,"payload":1000,"ok":true,"rssi_dbm":-70}
{"at_us":2100,"node":2,"kind":"rx","frame":"DATA","src":1,"dst":2,"seq":1,"payload":1000,"ok":false,"rssi_dbm":-70}
{"at_us":2100,"node":3,"kind":"rx","frame":"DATA","src":1,"dst":2,"seq":1,"payload":1000,"ok":true,"rssi_dbm":-80}
{"at_us":3000,"node":1,"kind":"txdone","frame":"DATA","src":1,"dst":2,"seq":1}
{"at_us":1000100,"node":2,"kind":"rx","frame":"ACK","src":2,"dst":1,"ok":true}
`

func TestAnalyzeCounts(t *testing.T) {
	rep, err := analyze(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if rep.events != 5 {
		t.Errorf("events = %d", rep.events)
	}
	if rep.firstUs != 100 || rep.lastUs != 1000100 {
		t.Errorf("span = %d..%d", rep.firstUs, rep.lastUs)
	}
	if rep.byKind["rx/DATA"] != 3 || rep.byKind["txdone/DATA"] != 1 {
		t.Errorf("byKind = %v", rep.byKind)
	}
	// Overheard reception at node 3 must not count towards the 1->2 link.
	ls := rep.links[linkKey{src: 1, dst: 2}]
	if ls == nil {
		t.Fatal("missing link stats")
	}
	if ls.deliveredOK != 1 || ls.corrupted != 1 || ls.payloadBytes != 1000 {
		t.Errorf("link stats = %+v", ls)
	}
}

func TestAnalyzeRejectsGarbage(t *testing.T) {
	if _, err := analyze(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := analyze(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestReportPrint(t *testing.T) {
	rep, err := analyze(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.print(&sb)
	out := sb.String()
	for _, want := range []string{"5 events", "rx/DATA", "1->2", "50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
