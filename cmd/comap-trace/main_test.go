package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the expected outputs in testdata/ from the checked-in
// trace fixtures. The fixtures themselves are static: they were produced by
//
//	comap-sim -topology roles -roles chh -protocol {dcf,comap} \
//	          -seed 1 -cbr 20000 -duration 2s -trace testdata/ht-{dcf,comap}.jsonl
//
// and are not regenerated here, so simulator changes cannot silently shift
// what the analyzer tests assert.
var update = flag.Bool("update", false, "rewrite testdata/*.golden from the trace fixtures")

const sampleTrace = `{"at_us":100,"node":2,"kind":"rx","frame":"DATA","src":1,"dst":2,"seq":0,"payload":1000,"ok":true,"rssi_dbm":-70}
{"at_us":2100,"node":2,"kind":"rx","frame":"DATA","src":1,"dst":2,"seq":1,"payload":1000,"ok":false,"rssi_dbm":-70}
{"at_us":2100,"node":3,"kind":"rx","frame":"DATA","src":1,"dst":2,"seq":1,"payload":1000,"ok":true,"rssi_dbm":-80}
{"at_us":3000,"node":1,"kind":"txdone","frame":"DATA","src":1,"dst":2,"seq":1}
{"at_us":1000100,"node":2,"kind":"rx","frame":"ACK","src":2,"dst":1,"ok":true}
`

func TestAnalyzeCounts(t *testing.T) {
	rep, err := analyze(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if rep.events != 5 {
		t.Errorf("events = %d", rep.events)
	}
	if rep.firstUs != 100 || rep.lastUs != 1000100 {
		t.Errorf("span = %d..%d", rep.firstUs, rep.lastUs)
	}
	if rep.byKind["rx/DATA"] != 3 || rep.byKind["txdone/DATA"] != 1 {
		t.Errorf("byKind = %v", rep.byKind)
	}
	// Overheard reception at node 3 must not count towards the 1->2 link.
	ls := rep.links[linkKey{src: 1, dst: 2}]
	if ls == nil {
		t.Fatal("missing link stats")
	}
	if ls.deliveredOK != 1 || ls.corrupted != 1 || ls.payloadBytes != 1000 {
		t.Errorf("link stats = %+v", ls)
	}
}

func TestAnalyzeRejectsGarbage(t *testing.T) {
	if _, err := analyze(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := analyze(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
}

// runOut invokes the CLI dispatcher and returns its output. Exit-code
// sentinels (the CI gates of anomalies and diff) are not failures — tests
// that assert on codes use runCode.
func runOut(t *testing.T, args ...string) string {
	out, _ := runCode(t, args...)
	return out
}

// runCode invokes the CLI dispatcher and returns its output plus the exit
// code it would produce (0 ok, 2 gated). Operational errors fail the test.
func runCode(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	if err == nil {
		return buf.String(), 0
	}
	var code exitCodeError
	if errors.As(err, &code) {
		return buf.String(), int(code)
	}
	t.Fatalf("run(%v): %v", args, err)
	return "", 0
}

// TestGoldenOutputs runs every subcommand against the checked-in hidden-
// terminal traces (DCF and CO-MAP, same topology and seed) and compares the
// output byte-for-byte with the recorded expectation.
func TestGoldenOutputs(t *testing.T) {
	dcf := filepath.Join("testdata", "ht-dcf.jsonl")
	comap := filepath.Join("testdata", "ht-comap.jsonl")
	cases := []struct {
		name string
		args []string
	}{
		{"summary-dcf", []string{"summary", dcf}},
		{"summary-comap", []string{"summary", comap}},
		{"spans-dcf", []string{"spans", dcf}},
		{"spans-comap", []string{"spans", comap}},
		{"anomalies-dcf", []string{"anomalies", dcf}},
		{"anomalies-comap", []string{"anomalies", comap}},
		{"diff", []string{"diff", dcf, comap}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runOut(t, tc.args...)
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestAnomaliesSeparateProtocols is the paper's acceptance check: on the
// carrier-sensing hidden-terminal topology the DCF trace must exhibit
// HT-collision signatures and the CO-MAP trace, same seed, must not.
func TestAnomaliesSeparateProtocols(t *testing.T) {
	firstLine := func(out string) string {
		if i := strings.IndexByte(out, '\n'); i >= 0 {
			return out[:i]
		}
		return out
	}
	dcfOut := runOut(t, "anomalies", filepath.Join("testdata", "ht-dcf.jsonl"))
	var n int
	if _, err := fmt.Sscanf(firstLine(dcfOut), "HT-collision signatures: %d", &n); err != nil {
		t.Fatalf("unparseable anomalies header %q: %v", firstLine(dcfOut), err)
	}
	if n < 1 {
		t.Errorf("DCF trace: want >=1 HT-collision signature, got %d", n)
	}
	comapOut := runOut(t, "anomalies", filepath.Join("testdata", "ht-comap.jsonl"))
	if _, err := fmt.Sscanf(firstLine(comapOut), "HT-collision signatures: %d", &n); err != nil {
		t.Fatalf("unparseable anomalies header %q: %v", firstLine(comapOut), err)
	}
	if n != 0 {
		t.Errorf("CO-MAP trace: want 0 HT-collision signatures, got %d", n)
	}
}

// TestDiffReportsGoodputDelta checks that diff surfaces the goodput change
// between the two protocol runs and that CO-MAP comes out ahead.
func TestDiffReportsGoodputDelta(t *testing.T) {
	out := runOut(t, "diff",
		filepath.Join("testdata", "ht-dcf.jsonl"),
		filepath.Join("testdata", "ht-comap.jsonl"))
	var a, b, delta float64
	found := false
	for _, line := range strings.Split(out, "\n") {
		if _, err := fmt.Sscanf(line, "total goodput: %f -> %f Mbps (%f%%)", &a, &b, &delta); err == nil {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no total-goodput line in diff output:\n%s", out)
	}
	if b <= a {
		t.Errorf("expected CO-MAP goodput (%.3f) to exceed DCF (%.3f)", b, a)
	}
	if delta <= 0 {
		t.Errorf("expected positive goodput delta, got %+.1f%%", delta)
	}
}

// faultedTrace is a synthetic fault-injected trace: one acked frame before
// an outage window on node 1, one acked inside it, two health fallbacks
// within the window's attribution interval (the window plus the staleness
// lag) and one far past it.
const faultedTrace = `{"at_us":100,"node":1,"kind":"mac.enqueue","frame":"DATA","src":1,"dst":2,"seq":0,"payload":1000}
{"at_us":200000,"node":1,"kind":"mac.ack","frame":"DATA","src":1,"dst":2,"seq":0}
{"at_us":500000,"node":1,"kind":"fault","src":1,"reason":"outage","dur_us":300000}
{"at_us":550000,"node":1,"kind":"mac.enqueue","frame":"DATA","src":1,"dst":2,"seq":1,"payload":1000}
{"at_us":600000,"node":1,"kind":"mac.ack","frame":"DATA","src":1,"dst":2,"seq":1}
{"at_us":600000,"node":2,"kind":"co.fallback","src":1,"dst":2,"reason":"unhealthy_fix"}
{"at_us":1200000,"node":2,"kind":"co.fallback","src":1,"dst":2,"reason":"unhealthy_fix"}
{"at_us":3000000,"node":2,"kind":"co.fallback","src":1,"dst":2,"reason":"unhealthy_fix"}
`

// TestAnomaliesAttributesFaults checks the fault section of the anomalies
// report: window inventory, fallback attribution with the staleness lag, and
// the per-window goodput relative to the run mean.
func TestAnomaliesAttributesFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faulted.jsonl")
	if err := os.WriteFile(path, []byte(faultedTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOut(t, "anomalies", path)
	for _, want := range []string{
		"injected faults: 1 windows, 3 location-health fallbacks (unhealthy_fix=3)",
		"run-mean delivered goodput",
		"outage",
		"node 1",
		"2 fallbacks", // 600ms and 1200ms fall inside [500ms, 800ms+lag]; 3000ms does not
		"goodput",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("anomalies output missing %q:\n%s", want, out)
		}
	}
}

const ladderTrace = `{"at_us":100,"node":1,"kind":"mac.enqueue","frame":"DATA","src":1,"dst":2,"seq":0,"payload":1000}
{"at_us":200000,"node":1,"kind":"mac.ack","frame":"DATA","src":1,"dst":2,"seq":0}
{"at_us":500000,"node":0,"kind":"fault","src":0,"reason":"rpcpartition","dur_us":800000}
{"at_us":918011,"node":0,"kind":"co.ladder","reason":"fresh->dcf"}
{"at_us":1541986,"node":0,"kind":"co.ladder","reason":"dcf->fresh"}
`

// TestAnomaliesListsLadderTransitions checks the control-plane ladder
// section: every co.ladder event lands on the timeline next to the injected
// RPC fault windows.
func TestAnomaliesListsLadderTransitions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ladder.jsonl")
	if err := os.WriteFile(path, []byte(ladderTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOut(t, "anomalies", path)
	for _, want := range []string{
		"control-plane ladder transitions: 2",
		"fresh->dcf",
		"dcf->fresh",
		"rpcpartition",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("anomalies output missing %q:\n%s", want, out)
		}
	}
}

// TestAnomaliesNoFaultSectionOnCleanTrace keeps fault-free traces free of
// the fault section (and the golden outputs stable).
func TestAnomaliesNoFaultSectionOnCleanTrace(t *testing.T) {
	out := runOut(t, "anomalies", filepath.Join("testdata", "ht-dcf.jsonl"))
	if strings.Contains(out, "injected faults") {
		t.Errorf("fault section present on a fault-free trace:\n%s", out)
	}
}

// TestAnomaliesExitCode pins the CI gate: a trace with pathology signatures
// exits 2 (the DCF fixture has HT collisions, the CO-MAP fixture retry
// storms), a signature-free trace exits 0.
func TestAnomaliesExitCode(t *testing.T) {
	if _, code := runCode(t, "anomalies", filepath.Join("testdata", "ht-dcf.jsonl")); code != 2 {
		t.Errorf("anomalies on the HT-ridden DCF trace exited %d, want 2", code)
	}
	if _, code := runCode(t, "anomalies", filepath.Join("testdata", "ht-comap.jsonl")); code != 2 {
		t.Errorf("anomalies on the storm-carrying CO-MAP trace exited %d, want 2", code)
	}
	clean := filepath.Join(t.TempDir(), "clean.jsonl")
	if err := os.WriteFile(clean, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, code := runCode(t, "anomalies", clean); code != 0 {
		t.Errorf("anomalies on a signature-free trace exited %d, want 0", code)
	}
}

// TestDiffGates pins the diff CI gates: without gate flags diff always exits
// 0; -fail-drop trips on a goodput regression (CO-MAP -> DCF) but not an
// improvement, and -fail-anomaly-growth trips when signatures grow.
func TestDiffGates(t *testing.T) {
	dcf := filepath.Join("testdata", "ht-dcf.jsonl")
	comap := filepath.Join("testdata", "ht-comap.jsonl")
	if _, code := runCode(t, "diff", comap, dcf); code != 0 {
		t.Errorf("ungated diff exited %d, want 0", code)
	}
	if _, code := runCode(t, "diff", "-fail-drop", "10", dcf, comap); code != 0 {
		t.Errorf("diff with improving goodput exited %d, want 0", code)
	}
	out, code := runCode(t, "diff", "-fail-drop", "10", comap, dcf)
	if code != 2 {
		t.Errorf("diff with regressing goodput exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL: total goodput dropped") {
		t.Errorf("gate did not explain itself:\n%s", out)
	}
	out, code = runCode(t, "diff", "-fail-anomaly-growth", comap, dcf)
	if code != 2 {
		t.Errorf("diff with growing anomalies exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL: anomaly signatures grew") {
		t.Errorf("gate did not explain itself:\n%s", out)
	}
	if _, code = runCode(t, "diff", "-fail-anomaly-growth", dcf, comap); code != 0 {
		t.Errorf("diff with shrinking anomalies exited %d, want 0", code)
	}
}

// TestBareFileRunsSummary preserves the original single-purpose interface.
func TestBareFileRunsSummary(t *testing.T) {
	path := filepath.Join("testdata", "ht-dcf.jsonl")
	if got, want := runOut(t, path), runOut(t, "summary", path); got != want {
		t.Error("bare-file invocation differs from explicit summary")
	}
}

func TestReportPrint(t *testing.T) {
	rep, err := analyze(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.print(&sb)
	out := sb.String()
	for _, want := range []string{"5 events", "rx/DATA", "1->2", "50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
