// Command comap-trace analyses JSONL frame-lifecycle traces produced by
// comap-sim's -trace flag (or package trace directly).
//
//	comap-sim -topology roles -roles chh -protocol dcf -trace /tmp/ht.jsonl
//	comap-trace summary /tmp/ht.jsonl
//	comap-trace spans -n 10 /tmp/ht.jsonl
//	comap-trace anomalies /tmp/ht.jsonl
//	comap-trace diff /tmp/ht-dcf.jsonl /tmp/ht-comap.jsonl
//
// Subcommands:
//
//	summary    event counts, per-link delivery/corruption/goodput (default)
//	spans      per-frame lifecycle spans: phase percentiles and timelines
//	anomalies  hidden-terminal collision signatures, retry storms, failed
//	           exposed-terminal grants, RPC retry storms and breaker windows
//	rpc        stitch control-plane rpc.* client and rpc.srv server events
//	           into per-request spans (accepts several files: pass the
//	           comap-mapd -trace stream alongside the client trace)
//	diff       compare two traces per link and per phase
//
// Invoking with a bare file path (no subcommand) runs summary, matching the
// original single-purpose interface.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

// exitCodeError carries a process exit code through the run() error path
// without printing anything: the subcommand has already written its report.
// anomalies exits 2 when it finds protocol-pathology signatures, and diff
// exits 2 when a -fail-* gate trips, so CI can gate on trace analysis.
type exitCodeError int

func (e exitCodeError) Error() string { return fmt.Sprintf("exit code %d", int(e)) }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		var code exitCodeError
		if errors.As(err, &code) {
			os.Exit(int(code))
		}
		fmt.Fprintln(os.Stderr, "comap-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return runSummary(nil, w)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		return runSummary(rest, w)
	case "spans":
		return runSpans(rest, w)
	case "anomalies":
		return runAnomalies(rest, w)
	case "rpc":
		return runRPC(rest, w)
	case "diff":
		return runDiff(rest, w)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(w, "usage: comap-trace [summary|spans|anomalies|rpc|diff] [flags] file.jsonl ...")
		return nil
	default:
		// Back-compat: a bare file (or "-" for stdin) means summary.
		return runSummary(args, w)
	}
}

// openInput resolves a trace argument: a path, "-"/nothing for stdin.
func openInput(args []string) (io.ReadCloser, error) {
	if len(args) == 0 || args[0] == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	if len(args) > 1 {
		return nil, fmt.Errorf("expected one trace file, got %d", len(args))
	}
	return os.Open(args[0])
}

// loadEvents decodes a whole JSONL trace into memory.
func loadEvents(r io.Reader) ([]trace.Event, error) {
	var events []trace.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e trace.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	return events, nil
}

// loadEventsFile opens and decodes one trace file.
func loadEventsFile(path string) ([]trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := loadEvents(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// ms renders microseconds as milliseconds.
func ms(us int64) float64 { return float64(us) / 1e3 }

// pct renders a ratio as a percentage, tolerating a zero denominator.
func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
