// Command comap-trace analyses a JSONL PHY event trace produced by
// comap-sim's -trace flag (or package trace): per-link delivery counts,
// corruption rates and goodput, plus a per-frame-kind breakdown.
//
//	comap-sim -topology et -pos 30 -duration 5s -trace /tmp/et.jsonl
//	comap-trace /tmp/et.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "comap-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	var r io.Reader = os.Stdin
	if len(args) == 1 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	} else if len(args) > 1 {
		return fmt.Errorf("usage: comap-trace [file.jsonl]")
	}

	report, err := analyze(r)
	if err != nil {
		return err
	}
	report.print(os.Stdout)
	return nil
}

// linkKey identifies a directed (src, dst) pair.
type linkKey struct {
	src, dst uint16
}

// linkStats accumulates per-link counters.
type linkStats struct {
	deliveredOK  int
	corrupted    int
	payloadBytes int64
}

// report is the analysis result.
type report struct {
	firstUs, lastUs int64
	events          int
	byKind          map[string]int
	links           map[linkKey]*linkStats
}

// analyze consumes a JSONL trace.
func analyze(r io.Reader) (*report, error) {
	rep := &report{
		byKind:  make(map[string]int),
		links:   make(map[linkKey]*linkStats),
		firstUs: -1,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e trace.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		rep.events++
		if rep.firstUs < 0 || e.AtMicros < rep.firstUs {
			rep.firstUs = e.AtMicros
		}
		if e.AtMicros > rep.lastUs {
			rep.lastUs = e.AtMicros
		}
		rep.byKind[e.Kind+"/"+e.FrameKind]++
		// Per-link data accounting: count only receptions at the intended
		// destination.
		if e.Kind == "rx" && e.FrameKind == "DATA" && e.Node == e.Dst {
			k := linkKey{src: uint16(e.Src), dst: uint16(e.Dst)}
			ls := rep.links[k]
			if ls == nil {
				ls = &linkStats{}
				rep.links[k] = ls
			}
			if e.OK {
				ls.deliveredOK++
				ls.payloadBytes += int64(e.Payload)
			} else {
				ls.corrupted++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rep.events == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	return rep, nil
}

// print renders the report.
func (r *report) print(w io.Writer) {
	spanUs := r.lastUs - r.firstUs
	fmt.Fprintf(w, "%d events over %.3f s\n\n", r.events, float64(spanUs)/1e6)

	fmt.Fprintln(w, "events by kind:")
	kinds := make([]string, 0, len(r.byKind))
	for k := range r.byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-18s %d\n", k, r.byKind[k])
	}

	fmt.Fprintln(w, "\nper-link data receptions (at the intended destination):")
	fmt.Fprintf(w, "  %-12s %10s %10s %12s %12s\n", "link", "ok", "corrupt", "loss", "goodput")
	links := make([]linkKey, 0, len(r.links))
	for k := range r.links {
		links = append(links, k)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].src != links[j].src {
			return links[i].src < links[j].src
		}
		return links[i].dst < links[j].dst
	})
	for _, k := range links {
		ls := r.links[k]
		total := ls.deliveredOK + ls.corrupted
		loss := 0.0
		if total > 0 {
			loss = float64(ls.corrupted) / float64(total)
		}
		goodput := 0.0
		if spanUs > 0 {
			goodput = float64(ls.payloadBytes) * 8 / (float64(spanUs) / 1e6) / 1e6
		}
		fmt.Fprintf(w, "  %4d->%-6d %10d %10d %11.1f%% %9.3f Mbps\n",
			k.src, k.dst, ls.deliveredOK, ls.corrupted, loss*100, goodput)
	}
}
