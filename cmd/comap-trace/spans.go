package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/trace/span"
)

// runSpans implements the spans subcommand: fold the trace into per-frame
// lifecycle spans, report phase-duration percentiles and per-link service
// quality, and optionally print individual timelines.
func runSpans(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("spans", flag.ContinueOnError)
	fs.SetOutput(w)
	n := fs.Int("n", 0, "print the first n individual span timelines (0 = none)")
	slowest := fs.Bool("slowest", false, "with -n: print the n slowest spans instead of the first n")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := openInput(fs.Args())
	if err != nil {
		return err
	}
	defer in.Close()
	events, err := loadEvents(in)
	if err != nil {
		return err
	}
	spans := span.FromEvents(events)
	printSpanReport(w, spans, *n, *slowest)
	return nil
}

// phaseSamples collects per-phase durations (ms) over completed spans.
type phaseSamples struct {
	queued, contend, inflight, total []float64
}

func collectPhases(spans []*span.Span) phaseSamples {
	var ps phaseSamples
	for _, s := range spans {
		if s.Outcome == span.OutcomePending {
			continue
		}
		if d := s.QueuedUs(); d >= 0 {
			ps.queued = append(ps.queued, ms(d))
		}
		if d := s.ContendUs(); d >= 0 {
			ps.contend = append(ps.contend, ms(d))
		}
		if d := s.InFlightUs(); d >= 0 {
			ps.inflight = append(ps.inflight, ms(d))
		}
		if d := s.TotalUs(); d >= 0 {
			ps.total = append(ps.total, ms(d))
		}
	}
	return ps
}

func printSpanReport(w io.Writer, spans []*span.Span, n int, slowest bool) {
	var acked, dropped, pending, delivered, retries int
	perLink := make(map[linkKey][]*span.Span)
	for _, s := range spans {
		switch s.Outcome {
		case span.OutcomeAcked:
			acked++
		case span.OutcomeDropped:
			dropped++
		default:
			pending++
		}
		if s.Delivered() {
			delivered++
		}
		retries += s.Retries
		k := linkKey{src: uint16(s.Src), dst: uint16(s.Dst)}
		perLink[k] = append(perLink[k], s)
	}
	fmt.Fprintf(w, "%d spans: %d acked (%.1f%%), %d dropped, %d pending\n",
		len(spans), acked, pct(acked, len(spans)), dropped, pending)
	fmt.Fprintf(w, "delivered to destination: %d (%.1f%%), %d retransmissions\n\n",
		delivered, pct(delivered, len(spans)), retries)

	ps := collectPhases(spans)
	fmt.Fprintln(w, "phase durations over completed spans (ms):")
	fmt.Fprintf(w, "  %-10s %8s %8s %8s %8s %8s\n", "phase", "n", "p50", "p90", "p99", "mean")
	printPhaseRow(w, "queued", ps.queued)
	printPhaseRow(w, "contend", ps.contend)
	printPhaseRow(w, "inflight", ps.inflight)
	printPhaseRow(w, "total", ps.total)

	fmt.Fprintln(w, "\nper-link service:")
	fmt.Fprintf(w, "  %-12s %8s %8s %9s %10s %12s %12s %12s\n",
		"link", "spans", "acked", "dropped", "rx-ok", "p50 total", "p999 total", "max total")
	for _, k := range sortedLinks(perLink) {
		ls := perLink[k]
		var a, d, rx int
		var totals []float64
		for _, s := range ls {
			switch s.Outcome {
			case span.OutcomeAcked:
				a++
			case span.OutcomeDropped:
				d++
			}
			if s.Delivered() {
				rx++
			}
			if t := s.TotalUs(); t >= 0 {
				totals = append(totals, ms(t))
			}
		}
		p50, p999, max := "-", "-", "-"
		e := stats.NewECDF(totals)
		if q, err := e.Quantile(0.5); err == nil {
			p50 = fmt.Sprintf("%.3f ms", q)
		}
		if q, err := e.Quantile(0.999); err == nil {
			p999 = fmt.Sprintf("%.3f ms", q)
		}
		if q, err := e.Quantile(1); err == nil {
			max = fmt.Sprintf("%.3f ms", q)
		}
		fmt.Fprintf(w, "  %-12s %8d %7.1f%% %8.1f%% %9.1f%% %12s %12s %12s\n",
			k, len(ls), pct(a, len(ls)), pct(d, len(ls)), pct(rx, len(ls)), p50, p999, max)
	}

	if n > 0 {
		pick := spans
		if slowest {
			pick = slowestSpans(spans, n)
			fmt.Fprintf(w, "\n%d slowest spans:\n", len(pick))
		} else {
			if len(pick) > n {
				pick = pick[:n]
			}
			fmt.Fprintf(w, "\nfirst %d spans:\n", len(pick))
		}
		for _, s := range pick {
			printSpanLine(w, s)
		}
	}
}

func printPhaseRow(w io.Writer, name string, samples []float64) {
	e := stats.NewECDF(samples)
	if e.N() == 0 {
		fmt.Fprintf(w, "  %-10s %8d %8s %8s %8s %8s\n", name, 0, "-", "-", "-", "-")
		return
	}
	p50, _ := e.Quantile(0.50)
	p90, _ := e.Quantile(0.90)
	p99, _ := e.Quantile(0.99)
	fmt.Fprintf(w, "  %-10s %8d %8.3f %8.3f %8.3f %8.3f\n",
		name, e.N(), p50, p90, p99, e.Mean())
}

// slowestSpans returns the n completed spans with the largest total service
// time, slowest first.
func slowestSpans(spans []*span.Span, n int) []*span.Span {
	var done []*span.Span
	for _, s := range spans {
		if s.TotalUs() >= 0 {
			done = append(done, s)
		}
	}
	// Selection by repeated max keeps the common n≪len case simple; traces
	// are analysed offline, so an O(n·len) pass is fine.
	var out []*span.Span
	used := make(map[*span.Span]bool)
	for len(out) < n && len(out) < len(done) {
		var best *span.Span
		for _, s := range done {
			if used[s] {
				continue
			}
			if best == nil || s.TotalUs() > best.TotalUs() {
				best = s
			}
		}
		used[best] = true
		out = append(out, best)
	}
	return out
}

// printSpanLine renders one span as a single timeline row.
func printSpanLine(w io.Writer, s *span.Span) {
	phases := func(us int64) string {
		if us < 0 {
			return "-"
		}
		return fmt.Sprintf("%.3fms", ms(us))
	}
	line := fmt.Sprintf("  t=%9.3fms %4d->%-4d seq=%d/%d queued=%s contend=%s inflight=%s attempts=%d",
		ms(s.EnqueuedUs), s.Src, s.Dst, s.Seq, s.Chain,
		phases(s.QueuedUs()), phases(s.ContendUs()), phases(s.InFlightUs()),
		len(s.Attempts))
	if s.Retries > 0 {
		line += fmt.Sprintf(" retries=%d", s.Retries)
	}
	line += " " + s.Outcome
	if s.Reason != "" && s.Reason != "ack" {
		line += "(" + s.Reason + ")"
	}
	if s.RxCorrupt > 0 {
		line += fmt.Sprintf(" rx-corrupt=%d", s.RxCorrupt)
	}
	fmt.Fprintln(w, line)
}
