package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"

	"repro/internal/trace"
	"repro/internal/trace/rpcspan"
)

// runRPC implements the rpc subcommand: stitch the control-plane rpc.*
// client events and rpc.srv server events into per-request spans, and
// report where the control plane's time and failures went — attempt
// attributions, retry/backoff behaviour, breaker windows and the
// degradation-ladder transitions with the requests that caused them.
//
// Accepts one or more trace files; an in-sim remote run writes both
// streams into one file, a comap-mapd deployment keeps the server stream
// in its own -trace file and merges here (joining is by request ID, so
// clock domains need not align).
func runRPC(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rpc", flag.ContinueOnError)
	fs.SetOutput(w)
	topN := fs.Int("n", 5, "slowest served spans to list")
	reqID := fs.Uint64("req", 0, "dump one request's full stitched timeline")
	asJSON := fs.Bool("json", false, "emit the stitched result as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("rpc: need at least one trace file")
	}
	var events []trace.Event
	for _, p := range paths {
		evs, err := loadEventsFile(p)
		if err != nil {
			return err
		}
		events = append(events, evs...)
	}
	res := rpcspan.FromEvents(events)
	if len(res.Spans) == 0 && len(res.Service) == 0 {
		return fmt.Errorf("no rpc.* events in trace (remote CO-MAP runs emit them; in-process runs have no control plane)")
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	if *reqID != 0 {
		s := res.Span(*reqID)
		if s == nil {
			return fmt.Errorf("no span for req %d", *reqID)
		}
		printSpanTimeline(w, s)
		return nil
	}
	printRPCReport(w, res, *topN)
	return nil
}

func printRPCReport(w io.Writer, res *rpcspan.Result, topN int) {
	// Outcome tallies per operation.
	type opTally struct {
		spans, attempts int
		outcomes        map[string]int
	}
	ops := make(map[string]*opTally)
	attrib := make(map[string]int)
	retryDist := make(map[int]int) // attempts-per-span histogram
	var okLats []int64
	for _, s := range res.Spans {
		t := ops[s.Op]
		if t == nil {
			t = &opTally{outcomes: make(map[string]int)}
			ops[s.Op] = t
		}
		t.spans++
		t.attempts += len(s.Attempts)
		t.outcomes[s.Outcome]++
		retryDist[len(s.Attempts)]++
		for _, a := range s.Attempts {
			attrib[a.Attribution]++
			if a.Outcome == rpcspan.OutcomeOK {
				okLats = append(okLats, a.DurUs)
			}
		}
	}
	opNames := make([]string, 0, len(ops))
	for op := range ops {
		opNames = append(opNames, op)
	}
	sort.Strings(opNames)

	fmt.Fprintf(w, "rpc spans: %d\n", len(res.Spans))
	fmt.Fprintf(w, "  %-16s %8s %9s   %s\n", "op", "spans", "attempts", "outcomes")
	for _, op := range opNames {
		t := ops[op]
		fmt.Fprintf(w, "  %-16s %8d %9d   %s\n", op, t.spans, t.attempts, tallyString(t.outcomes))
	}
	fmt.Fprintf(w, "attempt attribution: %s\n", tallyString(attrib))
	if !res.HasServer {
		fmt.Fprintln(w, "  (client-only trace: no rpc.srv stream to join; pass the comap-mapd -trace file too)")
	}
	if len(res.Unattached) > 0 {
		byReason := make(map[string]int)
		for _, d := range res.Unattached {
			byReason[d.Reason]++
		}
		fmt.Fprintf(w, "refused before issue (no request id): %s\n", tallyString(byReason))
	}

	fmt.Fprint(w, "attempts per request:")
	counts := make([]int, 0, len(retryDist))
	for n := range retryDist {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	for _, n := range counts {
		fmt.Fprintf(w, " %dx=%d", n, retryDist[n])
	}
	fmt.Fprintln(w)

	if len(okLats) > 0 {
		sort.Slice(okLats, func(i, j int) bool { return okLats[i] < okLats[j] })
		q := func(p float64) float64 { return ms(okLats[int(p*float64(len(okLats)-1))]) }
		fmt.Fprintf(w, "served-attempt latency: p50 %.3fms  p99 %.3fms  max %.3fms (%d ok attempts)\n",
			q(0.50), q(0.99), ms(okLats[len(okLats)-1]), len(okLats))
	}

	if len(res.Breakers) > 0 {
		fmt.Fprintf(w, "\nbreaker-open windows: %d\n", len(res.Breakers))
		for _, bw := range res.Breakers {
			dur := "still open"
			if bw.CloseUs >= 0 {
				dur = fmt.Sprintf("+%.3fms", ms(bw.CloseUs-bw.OpenUs))
			}
			fmt.Fprintf(w, "  t=%9.3fms %-12s %2d failed half-open probes, %4d calls refused\n",
				ms(bw.OpenUs), dur, bw.Reopens, bw.Drops)
		}
	}

	if len(res.Ladder) > 0 {
		fmt.Fprintf(w, "\nladder transitions: %d\n", len(res.Ladder))
		for _, l := range res.Ladder {
			fmt.Fprintf(w, "  t=%9.3fms %-22s", ms(l.AtUs), l.Change)
			if s := res.Span(l.Req); s != nil {
				fmt.Fprintf(w, " caused by req %d (%s, %d attempts, %s)",
					l.Req, s.Op, len(s.Attempts), s.Outcome)
			}
			fmt.Fprintln(w)
		}
	}

	if len(res.Service) > 0 {
		byReason := make(map[string]int)
		for _, se := range res.Service {
			byReason[se.Reason]++
		}
		fmt.Fprintf(w, "\nservice lifecycle: %s\n", tallyString(byReason))
	}

	// Slowest served spans: where a healthy control plane spent its tail.
	served := make([]*rpcspan.Span, 0, len(res.Spans))
	for _, s := range res.Spans {
		if s.Outcome == rpcspan.SpanServed && s.EndUs >= 0 {
			served = append(served, s)
		}
	}
	sort.Slice(served, func(i, j int) bool {
		return served[i].EndUs-served[i].StartUs > served[j].EndUs-served[j].StartUs
	})
	if len(served) > topN {
		served = served[:topN]
	}
	if len(served) > 0 {
		fmt.Fprintf(w, "\nslowest served requests:\n")
		for _, s := range served {
			fmt.Fprintf(w, "  req %-6d %-16s t=%9.3fms +%8.3fms %d attempt(s)\n",
				s.Req, s.Op, ms(s.StartUs), ms(s.EndUs-s.StartUs), len(s.Attempts))
		}
	}
}

// printSpanTimeline dumps one request's stitched lifecycle, attempt by
// attempt, with the joined server events inline.
func printSpanTimeline(w io.Writer, s *rpcspan.Span) {
	fmt.Fprintf(w, "req %d  op=%s  outcome=%s", s.Req, s.Op, s.Outcome)
	if s.Decision != "" {
		fmt.Fprintf(w, "  decision=%s (%s)", s.Decision, s.Provenance)
	}
	fmt.Fprintln(w)
	for _, a := range s.Attempts {
		fmt.Fprintf(w, "  attempt %d: t=%9.3fms", a.Seq, ms(a.StartUs))
		if a.EndUs >= 0 {
			fmt.Fprintf(w, " +%8.3fms %-12s", ms(a.EndUs-a.StartUs), a.Outcome)
		} else {
			fmt.Fprintf(w, " %22s", "pending")
		}
		fmt.Fprintf(w, " [%s]", a.Attribution)
		if a.BackoffUs > 0 {
			fmt.Fprintf(w, " backoff %.3fms", ms(a.BackoffUs))
		}
		fmt.Fprintln(w)
		for _, se := range a.Server {
			fmt.Fprintf(w, "    srv t=%9.3fms %-14s", ms(se.AtUs), se.Reason)
			if se.Count > 0 {
				fmt.Fprintf(w, " count=%d", se.Count)
			}
			fmt.Fprintf(w, " epoch=%d\n", se.Epoch)
		}
	}
	for _, d := range s.Drops {
		fmt.Fprintf(w, "  drop:      t=%9.3fms %s\n", ms(d.AtUs), d.Reason)
	}
}

// tallyString renders a reason->count map as "a=1 b=2", keys sorted.
func tallyString(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, m[k])
	}
	if out == "" {
		return "(none)"
	}
	return out
}
