package main

import (
	"flag"
	"fmt"
	"io"
	"sort"

	"repro/internal/frame"
	"repro/internal/trace"
	"repro/internal/trace/rpcspan"
	"repro/internal/trace/span"
)

// runAnomalies implements the anomalies subcommand: scan a trace for the
// protocol pathologies the paper targets — hidden-terminal collisions,
// retry storms and failed exposed-terminal grants — and, on fault-injected
// traces, attribute goodput dips and health fallbacks to the injected
// fault windows.
func runAnomalies(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("anomalies", flag.ContinueOnError)
	fs.SetOutput(w)
	guard := fs.Int64("guard-us", 20,
		"slot guard (µs): overlaps starting within it are contender collisions, not HT")
	storm := fs.Int("storm", 3, "consecutive failed services that count as a retry storm")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := openInput(fs.Args())
	if err != nil {
		return err
	}
	defer in.Close()
	events, err := loadEvents(in)
	if err != nil {
		return err
	}
	rep := findAnomalies(events, *guard, *storm)
	rep.print(w)
	// CI gate: any pathology signature makes the process exit 2, so a
	// pipeline can fail a build on a trace that should have been clean.
	if len(rep.ht)+len(rep.storms)+len(rep.etFails)+
		len(rep.rpcStorms)+len(rep.rpcBreaker) > 0 {
		return exitCodeError(2)
	}
	return nil
}

// onAir is one reconstructed on-air interval.
type onAir struct {
	node           frame.NodeID
	src, dst       frame.NodeID
	seq            uint16
	startUs, endUs int64
	concurrent     bool // transmitted under an exposed-terminal grant
}

// htSignature is one hidden-terminal collision: a data frame corrupted at
// its intended receiver by a transmission that started mid-frame — past the
// slot guard, so carrier sense at the interferer must have failed (or vice
// versa: the victim started inside the interferer's frame it could not hear).
type htSignature struct {
	atUs       int64
	victim     linkKey
	interferer frame.NodeID
	overlapUs  int64
	offsetUs   int64 // interferer start − victim start
}

// stormRecord is one run of consecutive failed services on a link.
type stormRecord struct {
	link    linkKey
	startUs int64
	length  int
}

// etFailure is one exposed-terminal-granted service that ended without an
// ACK: the concurrency validation promised coexistence the channel did not
// deliver.
type etFailure struct {
	link    linkKey
	atUs    int64
	reason  string
	retries int
}

// faultWindow is one injected fault activation, with the degraded-mode
// behavior attributed to it: health fallbacks inside the window (plus the
// staleness lag, since a fix's age keeps tripping the gate after the window
// closes, until the next report lands) and the delivered goodput inside the
// window versus the run mean.
type faultWindow struct {
	kind           string
	node           frame.NodeID // Broadcast = network-wide
	startUs, endUs int64
	wholeRun       bool // armed for the run (no window length recorded)
	fallbacks      int
	bps            float64
}

type anomalyReport struct {
	guardUs      int64
	stormLen     int
	corruptedRx  int
	slotAligned  int // overlaps within the guard: ordinary contention losses
	etOverlaps   int // overlaps under an ET grant (reported separately)
	ht           []htSignature
	storms       []stormRecord
	etFails      []etFailure
	etConcurrent int // spans with at least one ET-concurrent attempt

	// Fault attribution (fault-injected traces only).
	faults    []faultWindow
	fallbacks int
	byReason  map[string]int
	meanBps   float64 // whole-run delivered goodput, the dip baseline

	// Control-plane degradation-ladder transitions ("co.ladder" events,
	// remote CO-MAP runs only), on the same timeline as the fault windows.
	ladder []ladderStep

	// Control-plane RPC pathologies (rpc.* events, remote CO-MAP runs
	// only): retry storms — requests needing >= rpcStorm wire attempts —
	// and circuit-breaker open windows.
	rpcStorm   int
	rpcStorms  []*rpcspan.Span
	rpcBreaker []rpcspan.BreakerWindow
}

// ladderStep is one degradation-ladder transition of the control-plane
// client, e.g. "fresh->dcf".
type ladderStep struct {
	atUs   int64
	change string
}

// findAnomalies runs all detectors over a decoded trace.
func findAnomalies(events []trace.Event, guardUs int64, stormLen int) *anomalyReport {
	rep := &anomalyReport{guardUs: guardUs, stormLen: stormLen, rpcStorm: 3}
	intervals := onAirIntervals(events)
	spans := span.FromEvents(events)
	rep.scanCollisions(events, intervals)
	rep.scanSpans(spans)
	rep.scanFaults(events, spans)
	rep.scanRPC(events)
	return rep
}

// scanRPC runs the control-plane detectors: RPC retry storms (requests
// that needed rpcStorm or more wire attempts) and circuit-breaker open
// windows. Traces without rpc.* events leave the section empty, so
// in-process runs print byte-identical reports.
func (rep *anomalyReport) scanRPC(events []trace.Event) {
	hasRPC := false
	for _, e := range events {
		switch e.Kind {
		case trace.KindRPCCall, trace.KindRPCServer, trace.KindRPCBreaker:
			hasRPC = true
		}
		if hasRPC {
			break
		}
	}
	if !hasRPC {
		return
	}
	res := rpcspan.FromEvents(events)
	for _, s := range res.Spans {
		if len(s.Attempts) >= rep.rpcStorm {
			rep.rpcStorms = append(rep.rpcStorms, s)
		}
	}
	rep.rpcBreaker = res.Breakers
}

// onAirIntervals reconstructs every transmission interval from txstart
// events, tagging intervals transmitted under an exposed-terminal grant via
// the immediately preceding mac.tx decision.
func onAirIntervals(events []trace.Event) []onAir {
	var out []onAir
	lastConc := make(map[frame.NodeID]bool)
	for _, e := range events {
		switch e.Kind {
		case trace.KindTxAttempt:
			lastConc[e.Node] = e.Concurrent
		case trace.KindTxStart:
			out = append(out, onAir{
				node: e.Node, src: e.Src, dst: e.Dst, seq: e.SeqNo(),
				startUs:    e.AtMicros,
				endUs:      e.AtMicros + e.DurUs,
				concurrent: e.FrameKind == "DATA" && lastConc[e.Node],
			})
		}
	}
	return out
}

// scanCollisions classifies every corrupted data reception at its intended
// destination by the transmissions overlapping the victim frame.
func (rep *anomalyReport) scanCollisions(events []trace.Event, intervals []onAir) {
	for _, e := range events {
		if e.Kind != trace.KindRx || e.FrameKind != "DATA" ||
			e.Node != e.Dst || e.Decoded() {
			continue
		}
		rep.corruptedRx++
		victim, ok := victimInterval(intervals, e)
		if !ok {
			continue
		}
		for _, j := range intervals {
			if j.node == victim.node || j.node == e.Node {
				continue
			}
			if j.startUs >= victim.endUs || j.endUs <= victim.startUs {
				continue
			}
			offset := j.startUs - victim.startUs
			if abs64(offset) <= rep.guardUs {
				// Both transmitters left backoff in the same slot: an
				// ordinary contention collision, visible to carrier sense.
				rep.slotAligned++
				continue
			}
			if j.concurrent {
				// A validated exposed-terminal overlap that still corrupted
				// the frame: accounted under ET failures, not HT.
				rep.etOverlaps++
				continue
			}
			overlap := min64(victim.endUs, j.endUs) - max64(victim.startUs, j.startUs)
			rep.ht = append(rep.ht, htSignature{
				atUs:       e.AtMicros,
				victim:     linkKey{src: uint16(e.Src), dst: uint16(e.Dst)},
				interferer: j.node,
				overlapUs:  overlap,
				offsetUs:   offset,
			})
		}
	}
}

// victimInterval finds the on-air interval of the corrupted reception: the
// latest transmission of (src, seq) ending by the reception time. A small
// tolerance absorbs rounding of airtime to whole microseconds.
func victimInterval(intervals []onAir, rx trace.Event) (onAir, bool) {
	const tolUs = 5
	var best onAir
	found := false
	for _, iv := range intervals {
		if iv.node != rx.Src || iv.seq != rx.SeqNo() || iv.dst != rx.Dst {
			continue
		}
		if iv.endUs > rx.AtMicros+tolUs {
			continue
		}
		if !found || iv.endUs > best.endUs {
			best, found = iv, true
		}
	}
	return best, found
}

// scanSpans runs the span-level detectors: retry storms and failed
// exposed-terminal grants.
func (rep *anomalyReport) scanSpans(spans []*span.Span) {
	runs := make(map[linkKey]*stormRecord)
	for _, s := range spans {
		k := linkKey{src: uint16(s.Src), dst: uint16(s.Dst)}

		conc := false
		for _, a := range s.Attempts {
			if a.Concurrent {
				conc = true
				break
			}
		}
		if conc {
			rep.etConcurrent++
			if s.Outcome == span.OutcomeDropped {
				rep.etFails = append(rep.etFails, etFailure{
					link: k, atUs: s.EnqueuedUs, reason: s.Reason, retries: s.Retries,
				})
			}
		}

		switch s.Outcome {
		case span.OutcomeDropped:
			if r := runs[k]; r != nil {
				r.length++
			} else {
				runs[k] = &stormRecord{link: k, startUs: s.EnqueuedUs, length: 1}
			}
		case span.OutcomeAcked:
			rep.flushStorm(runs, k)
		}
	}
	for k := range runs {
		rep.flushStorm(runs, k)
	}
	sort.Slice(rep.storms, func(i, j int) bool {
		return rep.storms[i].startUs < rep.storms[j].startUs
	})
}

// fallbackLagUs extends a fault window for fallback attribution: a stale
// fix keeps tripping the health gate after its fault window closes, until
// the next report lands — at most one location-service heartbeat later.
const fallbackLagUs = 1_000_000

// scanFaults collects injected fault windows and "co.fallback" decisions,
// then attributes fallbacks and goodput dips to the windows. Traces without
// fault events leave the report's fault section empty.
func (rep *anomalyReport) scanFaults(events []trace.Event, spans []*span.Span) {
	var endUs int64
	for _, e := range events {
		if e.AtMicros > endUs {
			endUs = e.AtMicros
		}
		switch e.Kind {
		case trace.KindFault:
			w := faultWindow{
				kind:    e.Reason,
				node:    e.Src,
				startUs: e.AtMicros,
				endUs:   e.AtMicros + e.DurUs,
			}
			if e.DurUs == 0 {
				w.wholeRun = true // end patched to the run end below
			}
			rep.faults = append(rep.faults, w)
		case trace.KindCoFallback:
			rep.fallbacks++
			if rep.byReason == nil {
				rep.byReason = make(map[string]int)
			}
			rep.byReason[e.Reason]++
		case trace.KindCoLadder:
			rep.ladder = append(rep.ladder, ladderStep{atUs: e.AtMicros, change: e.Reason})
		}
	}
	if len(rep.faults) == 0 && rep.fallbacks == 0 {
		return
	}
	for i := range rep.faults {
		if rep.faults[i].wholeRun {
			rep.faults[i].endUs = endUs
		}
	}

	// Delivered-goodput timeline from acked spans, for the dip baseline and
	// the per-window rates.
	type delivery struct {
		atUs  int64
		bytes int
	}
	var deliveries []delivery
	var totalBytes int64
	for _, s := range spans {
		if s.Outcome != span.OutcomeAcked {
			continue
		}
		at := s.DeliveredUs
		if at < 0 {
			at = s.EndUs
		}
		deliveries = append(deliveries, delivery{atUs: at, bytes: s.Payload})
		totalBytes += int64(s.Payload)
	}
	if endUs > 0 {
		rep.meanBps = 8e6 * float64(totalBytes) / float64(endUs)
	}

	for _, e := range events {
		if e.Kind != trace.KindCoFallback {
			continue
		}
		for i := range rep.faults {
			w := &rep.faults[i]
			if e.AtMicros >= w.startUs && e.AtMicros <= w.endUs+fallbackLagUs {
				w.fallbacks++
			}
		}
	}
	for i := range rep.faults {
		w := &rep.faults[i]
		if w.endUs <= w.startUs {
			continue
		}
		var inWindow int64
		for _, d := range deliveries {
			if d.atUs >= w.startUs && d.atUs < w.endUs {
				inWindow += int64(d.bytes)
			}
		}
		w.bps = 8e6 * float64(inWindow) / float64(w.endUs-w.startUs)
	}
}

func (rep *anomalyReport) flushStorm(runs map[linkKey]*stormRecord, k linkKey) {
	r := runs[k]
	if r == nil {
		return
	}
	delete(runs, k)
	if r.length >= rep.stormLen {
		rep.storms = append(rep.storms, *r)
	}
}

func (rep *anomalyReport) print(w io.Writer) {
	fmt.Fprintf(w, "HT-collision signatures: %d\n", len(rep.ht))
	fmt.Fprintf(w, "  (%d corrupted data receptions: %d mid-frame overlaps past the %dµs guard,\n",
		rep.corruptedRx, len(rep.ht), rep.guardUs)
	fmt.Fprintf(w, "   %d slot-aligned contender collisions, %d overlaps under an ET grant)\n",
		rep.slotAligned, rep.etOverlaps)
	if len(rep.ht) > 0 {
		type agg struct {
			count              int
			overlapUs, offsets int64
		}
		byPair := make(map[string]*agg)
		for _, h := range rep.ht {
			key := fmt.Sprintf("%-12s by %d", h.victim, h.interferer)
			a := byPair[key]
			if a == nil {
				a = &agg{}
				byPair[key] = a
			}
			a.count++
			a.overlapUs += h.overlapUs
			a.offsets += abs64(h.offsetUs)
		}
		keys := make([]string, 0, len(byPair))
		for k := range byPair {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "  %-22s %8s %14s %14s\n", "victim / interferer", "count", "mean overlap", "mean offset")
		for _, k := range keys {
			a := byPair[k]
			fmt.Fprintf(w, "  %-22s %8d %11.3f ms %11.3f ms\n",
				k, a.count, ms(a.overlapUs)/float64(a.count), ms(a.offsets)/float64(a.count))
		}
	}

	fmt.Fprintf(w, "\nretry storms (>= %d consecutive failed services on a link): %d\n",
		rep.stormLen, len(rep.storms))
	for _, s := range rep.storms {
		fmt.Fprintf(w, "  t=%9.3fms %-12s %d consecutive drops\n",
			ms(s.startUs), s.link, s.length)
	}

	fmt.Fprintf(w, "\nfailed ET grants (concurrent service without an ACK): %d of %d concurrent services\n",
		len(rep.etFails), rep.etConcurrent)
	for _, f := range rep.etFails {
		fmt.Fprintf(w, "  t=%9.3fms %-12s dropped (%s) after %d retries\n",
			ms(f.atUs), f.link, f.reason, f.retries)
	}

	if len(rep.ladder) > 0 {
		fmt.Fprintf(w, "\ncontrol-plane ladder transitions: %d\n", len(rep.ladder))
		for _, l := range rep.ladder {
			fmt.Fprintf(w, "  t=%9.3fms %s\n", ms(l.atUs), l.change)
		}
	}

	if len(rep.rpcStorms) > 0 {
		fmt.Fprintf(w, "\nRPC retry storms (>= %d wire attempts on one request): %d\n",
			rep.rpcStorm, len(rep.rpcStorms))
		for _, s := range rep.rpcStorms {
			fmt.Fprintf(w, "  t=%9.3fms req %-6d %-16s %d attempts, %s\n",
				ms(s.StartUs), s.Req, s.Op, len(s.Attempts), s.Outcome)
		}
	}
	if len(rep.rpcBreaker) > 0 {
		fmt.Fprintf(w, "\nRPC breaker-open windows: %d\n", len(rep.rpcBreaker))
		for _, bw := range rep.rpcBreaker {
			dur := "still open"
			if bw.CloseUs >= 0 {
				dur = fmt.Sprintf("+%.3fms", ms(bw.CloseUs-bw.OpenUs))
			}
			fmt.Fprintf(w, "  t=%9.3fms %-12s %2d failed half-open probes, %4d calls refused\n",
				ms(bw.OpenUs), dur, bw.Reopens, bw.Drops)
		}
	}

	if len(rep.faults) == 0 && rep.fallbacks == 0 {
		return
	}
	fmt.Fprintf(w, "\ninjected faults: %d windows, %d location-health fallbacks",
		len(rep.faults), rep.fallbacks)
	if len(rep.byReason) > 0 {
		reasons := make([]string, 0, len(rep.byReason))
		for r := range rep.byReason {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		fmt.Fprint(w, " (")
		for i, r := range reasons {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s=%d", r, rep.byReason[r])
		}
		fmt.Fprint(w, ")")
	}
	fmt.Fprintln(w)
	if rep.meanBps > 0 {
		fmt.Fprintf(w, "  run-mean delivered goodput: %.3f Mbps; fallbacks attributed within %.0fms of each window\n",
			rep.meanBps/1e6, float64(fallbackLagUs)/1e3)
	}
	for _, f := range rep.faults {
		target := "all nodes"
		if f.node != frame.Broadcast {
			target = fmt.Sprintf("node %d", f.node)
		}
		window := fmt.Sprintf("+%.3fms", ms(f.endUs-f.startUs))
		if f.wholeRun {
			window = "whole-run"
		}
		fmt.Fprintf(w, "  t=%9.3fms %-10s %-8s %-9s %4d fallbacks",
			ms(f.startUs), window, f.kind, target, f.fallbacks)
		if rep.meanBps > 0 && f.endUs > f.startUs {
			fmt.Fprintf(w, "   goodput %7.3f Mbps (%.2fx run mean)", f.bps/1e6, f.bps/rep.meanBps)
		}
		fmt.Fprintln(w)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
