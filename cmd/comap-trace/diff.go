package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/trace/span"
)

// runDiff implements the diff subcommand: compare two traces of the same
// scenario (e.g. DCF vs CO-MAP on one topology and seed) per link and per
// lifecycle phase.
func runDiff(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(w)
	guard := fs.Int64("guard-us", 20, "slot guard (µs) for the anomaly comparison")
	storm := fs.Int("storm", 3, "retry-storm threshold for the anomaly comparison")
	failDrop := fs.Float64("fail-drop", 0,
		"exit 2 when B's total goodput is more than this many percent below A's (0 disables; for CI gating)")
	failGrowth := fs.Bool("fail-anomaly-growth", false,
		"exit 2 when B shows more HT signatures, retry storms or failed ET grants than A (for CI gating)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: comap-trace diff [-fail-drop pct] [-fail-anomaly-growth] a.jsonl b.jsonl")
	}
	pathA, pathB := fs.Arg(0), fs.Arg(1)
	evA, err := loadEventsFile(pathA)
	if err != nil {
		return err
	}
	evB, err := loadEventsFile(pathB)
	if err != nil {
		return err
	}
	a := buildSide(evA, *guard, *storm)
	b := buildSide(evB, *guard, *storm)
	printDiff(w, pathA, pathB, a, b)

	// CI gates: report what tripped on the normal output stream, then carry
	// the exit code out through the sentinel.
	failed := false
	if *failDrop > 0 {
		if delta := relDelta(a.totalMbps, b.totalMbps); delta < -*failDrop {
			fmt.Fprintf(w, "\nFAIL: total goodput dropped %.1f%% (gate: -fail-drop %.1f)\n", -delta, *failDrop)
			failed = true
		}
	}
	if *failGrowth {
		na := a.ht + a.storms + a.etFails
		nb := b.ht + b.storms + b.etFails
		if nb > na {
			fmt.Fprintf(w, "\nFAIL: anomaly signatures grew %d -> %d (gate: -fail-anomaly-growth)\n", na, nb)
			failed = true
		}
	}
	if failed {
		return exitCodeError(2)
	}
	return nil
}

// linkSide is one trace's per-link measurement.
type linkSide struct {
	goodputMbps float64
	ackedPct    float64
	p50TotalMs  float64
	spans       int
}

// sideReport is everything diff compares for one trace.
type sideReport struct {
	spanUs     int64
	totalMbps  float64
	links      map[linkKey]*linkSide
	ht, storms int
	etFails    int
}

func buildSide(events []trace.Event, guardUs int64, stormLen int) *sideReport {
	rep := summarize(events)
	spans := span.FromEvents(events)
	anom := findAnomalies(events, guardUs, stormLen)

	side := &sideReport{
		spanUs:  rep.spanUs(),
		links:   make(map[linkKey]*linkSide),
		ht:      len(anom.ht),
		storms:  len(anom.storms),
		etFails: len(anom.etFails),
	}

	perLink := make(map[linkKey][]*span.Span)
	for _, s := range spans {
		k := linkKey{src: uint16(s.Src), dst: uint16(s.Dst)}
		perLink[k] = append(perLink[k], s)
	}
	for k, ls := range rep.links {
		goodput := 0.0
		if side.spanUs > 0 {
			goodput = float64(ls.payloadBytes) * 8 / (float64(side.spanUs) / 1e6) / 1e6
		}
		side.totalMbps += goodput
		acked := 0
		var totals []float64
		for _, s := range perLink[k] {
			if s.Outcome == span.OutcomeAcked {
				acked++
			}
			if t := s.TotalUs(); t >= 0 {
				totals = append(totals, ms(t))
			}
		}
		p50, _ := stats.NewECDF(totals).Quantile(0.5)
		side.links[k] = &linkSide{
			goodputMbps: goodput,
			ackedPct:    pct(acked, len(perLink[k])),
			p50TotalMs:  p50,
			spans:       len(perLink[k]),
		}
	}
	return side
}

func printDiff(w io.Writer, pathA, pathB string, a, b *sideReport) {
	fmt.Fprintf(w, "A: %s (%.3f s)\n", pathA, float64(a.spanUs)/1e6)
	fmt.Fprintf(w, "B: %s (%.3f s)\n\n", pathB, float64(b.spanUs)/1e6)

	fmt.Fprintf(w, "total goodput: %.3f -> %.3f Mbps (%+.1f%%)\n\n",
		a.totalMbps, b.totalMbps, relDelta(a.totalMbps, b.totalMbps))

	fmt.Fprintln(w, "per-link (A -> B):")
	fmt.Fprintf(w, "  %-12s %22s %20s %24s\n",
		"link", "goodput (Mbps)", "acked", "p50 service (ms)")
	union := make(map[linkKey]bool)
	for k := range a.links {
		union[k] = true
	}
	for k := range b.links {
		union[k] = true
	}
	for _, k := range sortedLinks(union) {
		la, lb := a.links[k], b.links[k]
		if la == nil {
			la = &linkSide{}
		}
		if lb == nil {
			lb = &linkSide{}
		}
		fmt.Fprintf(w, "  %-12s %9.3f -> %-9.3f %8.1f%% -> %-6.1f%% %10.3f -> %-10.3f\n",
			k, la.goodputMbps, lb.goodputMbps,
			la.ackedPct, lb.ackedPct,
			la.p50TotalMs, lb.p50TotalMs)
	}

	fmt.Fprintln(w, "\nanomalies (A -> B):")
	fmt.Fprintf(w, "  HT-collision signatures: %d -> %d\n", a.ht, b.ht)
	fmt.Fprintf(w, "  retry storms:            %d -> %d\n", a.storms, b.storms)
	fmt.Fprintf(w, "  failed ET grants:        %d -> %d\n", a.etFails, b.etFails)
}

// relDelta is the percentage change from a to b, guarding a zero baseline.
func relDelta(a, b float64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return 100
	}
	return 100 * (b - a) / a
}
