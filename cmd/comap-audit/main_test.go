package main

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd invokes run() and returns output plus the exit code it would
// produce (0 ok, 2 divergence). Operational errors fail the test.
func runCmd(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	if err == nil {
		return buf.String(), 0
	}
	var code exitCodeError
	if errors.As(err, &code) {
		return buf.String(), int(code)
	}
	t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	return "", 0
}

func goldenLedger(name string) string {
	return filepath.Join("..", "..", "internal", "netsim", "testdata", "golden_ledger_"+name+".jsonl")
}

func TestListNamesAllScenarios(t *testing.T) {
	out, code := runCmd(t, "list")
	if code != 0 {
		t.Fatalf("list exit code %d", code)
	}
	for _, name := range []string{"chh-dcf", "chh-comap", "chh-comap-faulted", "et30-comap"} {
		if !strings.Contains(out, name) {
			t.Errorf("list output missing %s:\n%s", name, out)
		}
	}
}

// TestVerifyGoldenLedgers re-runs every checked-in golden ledger's scenario
// through the CLI and expects semantic equality — the same gate CI's
// ledger-equivalence job applies.
func TestVerifyGoldenLedgers(t *testing.T) {
	for _, name := range []string{"chh-dcf", "chh-comap", "chh-comap-faulted", "et30-comap"} {
		name := name
		t.Run(name, func(t *testing.T) {
			out, code := runCmd(t, "verify", goldenLedger(name))
			if code != 0 {
				t.Fatalf("verify exit code %d:\n%s", code, out)
			}
			if !strings.Contains(out, "verify OK") {
				t.Fatalf("unexpected verify output:\n%s", out)
			}
		})
	}
}

func TestRecordAndCompareEqual(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	if out, code := runCmd(t, "record", "-scenario", "chh-dcf", "-duration", "200ms", "-o", a); code != 0 {
		t.Fatalf("record a exit %d:\n%s", code, out)
	}
	if out, code := runCmd(t, "record", "-scenario", "chh-dcf", "-duration", "200ms", "-o", b); code != 0 {
		t.Fatalf("record b exit %d:\n%s", code, out)
	}
	out, code := runCmd(t, "compare", a, b)
	if code != 0 {
		t.Fatalf("identical runs compared unequal (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "ledgers equal") {
		t.Fatalf("unexpected compare output:\n%s", out)
	}
}

func TestCompareFlagsSeedMismatch(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	runCmd(t, "record", "-scenario", "chh-dcf", "-duration", "200ms", "-o", a)
	runCmd(t, "record", "-scenario", "chh-dcf", "-duration", "200ms", "-seed", "99", "-o", b)
	out, code := runCmd(t, "compare", a, b)
	if code != 2 {
		t.Fatalf("seed-mismatched ledgers compared with exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "seed") {
		t.Fatalf("divergence report does not name the seed mismatch:\n%s", out)
	}
}

// TestBisectNamesInjectedNondeterminism is the acceptance test for the
// bisector: against a deliberately injected map-iteration nondeterminism
// (the test-only InjectNondet hook), bisect must exit 2 and name the first
// divergent event's subsystem tag and sim-time.
func TestBisectNamesInjectedNondeterminism(t *testing.T) {
	out, code := runCmd(t, "bisect",
		"-scenario", "chh-comap", "-duration", "300ms", "-inject-nondet", "-attempts", "6")
	if code != 2 {
		t.Fatalf("bisect against injected nondeterminism exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "tag=comap") {
		t.Fatalf("bisect did not name the comap subsystem tag:\n%s", out)
	}
	if !strings.Contains(out, "sim-time=") {
		t.Fatalf("bisect did not name the divergent event's sim-time:\n%s", out)
	}
	if !strings.Contains(out, "first divergent event") {
		t.Fatalf("bisect did not localize to an event:\n%s", out)
	}
}

// TestBisectCleanScenarioExitsZero asserts the bisector reports a healthy
// deterministic scenario as such.
func TestBisectCleanScenarioExitsZero(t *testing.T) {
	out, code := runCmd(t, "bisect", "-scenario", "chh-dcf", "-duration", "200ms", "-attempts", "2")
	if code != 0 {
		t.Fatalf("clean scenario bisect exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "no divergence") {
		t.Fatalf("unexpected bisect output:\n%s", out)
	}
}
