package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/audit"
)

// runBisect localizes a nondeterminism: it runs pairs of identically
// configured runs until their ledgers diverge (a deterministic scenario
// exits 0), notes the first divergent slice, then re-runs a pair with deep
// digests densified to every slice and per-event capture armed, and names
// the first divergent event by tag, sim-time and owner. Exit 2 when a
// divergence was found and localized.
func runBisect(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bisect", flag.ContinueOnError)
	var sf scenarioFlags
	sf.register(fs)
	attempts := fs.Int("attempts", 4, "max run pairs per phase before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := sf.resolve()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "bisect: scenario %s, seed %d, duration %s\n", sc.Name, sc.Opts.Seed, sc.Opts.Duration)

	// Phase 1: detect at the configured cadence.
	base := sf.config()
	var coarse *audit.Divergence
	for i := 1; i <= *attempts; i++ {
		a, err := runLedger(sc, base, nil)
		if err != nil {
			return err
		}
		b, err := runLedger(sc, base, nil)
		if err != nil {
			return err
		}
		if coarse = audit.Compare(a, b); coarse != nil {
			fmt.Fprintf(w, "phase 1: divergence detected on pair %d\n  %s\n", i, indent(coarse.String()))
			break
		}
	}
	if coarse == nil {
		fmt.Fprintf(w, "no divergence: %d run pairs produced identical ledgers\n", *attempts)
		return nil
	}

	// Phase 2: densify. Deep digests every slice and the event capture
	// window armed across the run, so the comparison bottoms out at the
	// first divergent dispatched event rather than a slice.
	dense := base
	dense.DeepEvery = 1
	dense.CaptureFrom = 0
	dense.CaptureUntil = sc.Opts.Duration + 1
	fmt.Fprintln(w, "phase 2: re-running with per-slice deep digests and event capture")
	for i := 1; i <= *attempts; i++ {
		a, err := runLedger(sc, dense, nil)
		if err != nil {
			return err
		}
		b, err := runLedger(sc, dense, nil)
		if err != nil {
			return err
		}
		d := audit.Compare(a, b)
		if d == nil {
			continue
		}
		if d.Kind != "event" {
			// Divergence without an event-level split (e.g. capture
			// truncation on a huge run): report what we have.
			fmt.Fprintf(w, "  %s\n", indent(d.String()))
			return exitCodeError(2)
		}
		fmt.Fprintln(w, d)
		if ev := firstEvent(d); ev != nil {
			fmt.Fprintf(w, "verdict: first divergent event is tag=%s at sim-time=%dns (owner %d), dispatch seq %d\n",
				ev.Tag, ev.AtNs, ev.Owner, d.Event.Seq)
		}
		return exitCodeError(2)
	}
	// The coarse phase diverged but the dense pairs agreed — rare, but
	// possible for a low-probability flake. Still a confirmed divergence.
	fmt.Fprintln(w, "phase 2: dense pairs agreed; divergence confirmed at slice granularity only (re-run bisect)")
	return exitCodeError(2)
}

// firstEvent picks the side that actually has the diverging record.
func firstEvent(d *audit.Divergence) *audit.EventRecord {
	if d.Event == nil {
		return nil
	}
	if d.Event.A != nil {
		return d.Event.A
	}
	return d.Event.B
}

func indent(s string) string {
	out := ""
	for i, line := range splitLines(s) {
		if i > 0 {
			out += "\n  "
		}
		out += line
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}
