// Command comap-audit records, verifies, compares and bisects determinism
// ledgers (internal/audit).
//
//	comap-audit record -scenario chh-comap [-seed 7] [-o ledger.jsonl]
//	comap-audit verify golden.jsonl
//	comap-audit compare a.jsonl b.jsonl
//	comap-audit bisect -scenario chh-comap [-inject-nondet]
//	comap-audit list
//
// verify re-runs the golden ledger's scenario (resolved by manifest name
// from the shared goldenscn registry) and compares semantically; compare
// diffs two recorded ledgers and names the first divergent slice plus the
// subsystem digests that split; bisect runs scenario pairs until they
// diverge, then re-runs with per-slice deep digests and event capture to
// name the first divergent event by tag, sim-time and owner.
//
// Exit codes: 0 no divergence, 1 operational error, 2 divergence found
// (compare/bisect) or verification failure (verify) — so CI can gate on
// ledger equivalence directly.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/goldenscn"
	"repro/internal/netsim"
)

// exitCodeError carries a process exit code through the run() error path
// without printing anything: the subcommand has already written its report.
type exitCodeError int

func (e exitCodeError) Error() string { return fmt.Sprintf("exit code %d", int(e)) }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		var code exitCodeError
		if errors.As(err, &code) {
			os.Exit(int(code))
		}
		fmt.Fprintln(os.Stderr, "comap-audit:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		usage(w)
		return exitCodeError(1)
	}
	switch args[0] {
	case "record":
		return runRecord(args[1:], w)
	case "verify":
		return runVerify(args[1:], w)
	case "compare":
		return runCompare(args[1:], w)
	case "bisect":
		return runBisect(args[1:], w)
	case "list":
		return runList(w)
	case "help", "-h", "--help":
		usage(w)
		return nil
	default:
		usage(w)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: comap-audit <subcommand> [flags]

subcommands:
  record   -scenario NAME [-seed N] [-duration D] [-slice D] [-deep-every N] [-o FILE]
           run a golden scenario and write its determinism ledger (default stdout)
  verify   GOLDEN.jsonl
           re-run the ledger's scenario and compare semantically (exit 2 on mismatch)
  compare  A.jsonl B.jsonl
           first divergent slice + which subsystem digests split (exit 2 on divergence)
  bisect   -scenario NAME [-seed N] [-duration D] [-attempts N] [-inject-nondet]
           run pairs until they diverge, then localize the first divergent event
  list     print the registered golden scenario names
`)
}

// scenarioFlags is the flag set shared by record and bisect.
type scenarioFlags struct {
	scenario  string
	seed      int64
	duration  time.Duration
	slice     time.Duration
	deepEvery int
	inject    bool
}

func (sf *scenarioFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&sf.scenario, "scenario", "", "golden scenario name (see comap-audit list)")
	fs.Int64Var(&sf.seed, "seed", 0, "override the scenario's seed (0 keeps the default)")
	fs.DurationVar(&sf.duration, "duration", 0, "override the scenario's duration (0 keeps the default)")
	fs.DurationVar(&sf.slice, "slice", 0, "ledger slice interval (0 = default 100ms)")
	fs.IntVar(&sf.deepEvery, "deep-every", 0, "deep digest every Nth slice (0 = default 8)")
	fs.BoolVar(&sf.inject, "inject-nondet", false,
		"test hook: inject map-iteration nondeterminism into the run")
}

func (sf *scenarioFlags) resolve() (goldenscn.Scenario, error) {
	if sf.scenario == "" {
		return goldenscn.Scenario{}, fmt.Errorf("missing -scenario (one of: %s)",
			strings.Join(goldenscn.Names(), ", "))
	}
	sc, ok := goldenscn.Get(sf.scenario)
	if !ok {
		return goldenscn.Scenario{}, fmt.Errorf("unknown scenario %q (one of: %s)",
			sf.scenario, strings.Join(goldenscn.Names(), ", "))
	}
	if sf.seed != 0 {
		sc.Opts.Seed = sf.seed
	}
	if sf.duration > 0 {
		sc.Opts.Duration = sf.duration
	}
	return sc, nil
}

func (sf *scenarioFlags) config() audit.Config {
	return audit.Config{
		SliceInterval: sf.slice,
		DeepEvery:     sf.deepEvery,
		InjectNondet:  sf.inject,
	}
}

// runLedger builds and runs the scenario with a ledger attached, streaming
// JSONL to sink when non-nil, and returns the in-memory ledger.
func runLedger(sc goldenscn.Scenario, cfg audit.Config, sink io.Writer) (*audit.LedgerFile, error) {
	opts := sc.Opts
	cfg.Sink = sink
	opts.Audit = &netsim.AuditConfig{Scenario: sc.Name, Config: cfg}
	n, err := netsim.Build(sc.Top, opts)
	if err != nil {
		return nil, err
	}
	n.Run()
	if err := n.Audit.Err(); err != nil {
		return nil, fmt.Errorf("ledger write: %w", err)
	}
	return n.Audit.File(), nil
}

func runRecord(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	var sf scenarioFlags
	sf.register(fs)
	out := fs.String("o", "", "output ledger path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := sf.resolve()
	if err != nil {
		return err
	}
	sink := w
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		sink = f
	}
	_, err = runLedger(sc, sf.config(), sink)
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(w, "wrote ledger for %s (seed %d) to %s\n", sc.Name, sc.Opts.Seed, *out)
	}
	return nil
}

func runVerify(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("verify: want exactly one golden ledger path")
	}
	golden, err := audit.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	m := golden.Manifest
	sc, ok := goldenscn.Get(m.Scenario)
	if !ok {
		return fmt.Errorf("golden ledger names unknown scenario %q (one of: %s)",
			m.Scenario, strings.Join(goldenscn.Names(), ", "))
	}
	sc.Opts.Seed = m.Seed
	// Config drift — the scenario registry no longer matches the golden —
	// is a verification failure with its own explanation, not a crash.
	cur := netsim.ManifestFor(sc.Name, sc.Top, sc.Opts)
	if cur.OptionsFP != m.OptionsFP || cur.TopologyHash != m.TopologyHash {
		fmt.Fprintf(w, "verify FAILED: %s: scenario configuration drifted from golden\n", m.Scenario)
		fmt.Fprintf(w, "  options fingerprint: golden %s, current %s\n", m.OptionsFP, cur.OptionsFP)
		fmt.Fprintf(w, "  topology hash:       golden %s, current %s\n", m.TopologyHash, cur.TopologyHash)
		fmt.Fprintln(w, "  (regenerate the golden if the configuration change is intended)")
		return exitCodeError(2)
	}
	cfg := audit.Config{
		SliceInterval: time.Duration(m.SliceUs) * time.Microsecond,
		DeepEvery:     m.DeepEvery,
	}
	got, err := runLedger(sc, cfg, nil)
	if err != nil {
		return err
	}
	if d := audit.Compare(got, golden); d != nil {
		fmt.Fprintf(w, "verify FAILED: %s (seed %d) diverged from %s\n", m.Scenario, m.Seed, fs.Arg(0))
		fmt.Fprintln(w, d)
		return exitCodeError(2)
	}
	fmt.Fprintf(w, "verify OK: %s (seed %d): %d slices, %d events, head %s\n",
		m.Scenario, m.Seed, golden.End.Slices, golden.End.Events, golden.End.Head)
	return nil
}

func runCompare(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare: want exactly two ledger paths")
	}
	a, err := audit.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := audit.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	if d := audit.Compare(a, b); d != nil {
		fmt.Fprintf(w, "ledgers diverge: %s vs %s\n", fs.Arg(0), fs.Arg(1))
		fmt.Fprintln(w, d)
		return exitCodeError(2)
	}
	head := "(no end record)"
	if a.End != nil {
		head = a.End.Head
	}
	fmt.Fprintf(w, "ledgers equal: %d slices, head %s\n", len(a.Slices), head)
	return nil
}

func runList(w io.Writer) error {
	for _, sc := range goldenscn.All() {
		fmt.Fprintf(w, "%-20s %s, %s, seed %d, %s\n",
			sc.Name, sc.Top.Name, sc.Opts.Protocol, sc.Opts.Seed, sc.Opts.Duration)
	}
	return nil
}
