// Command comap-mapd runs the CO-MAP control plane as a standalone
// crash-safe service: the location-registry mirror, the co-occurrence
// verdict computation and its sharded caches, behind the mapsvc HTTP API
// with snapshot + write-ahead-log persistence.
//
//	comap-mapd -http :9090 -data /var/lib/comap-mapd
//
// On startup the service recovers from the data directory (snapshot replay,
// then WAL replay), so a SIGKILL loses at most the torn tail of the last
// WAL append. The API:
//
//	POST /v1/ingest      concatenated binary ingest records
//	GET  /v1/verdict     ?obs=&src=&dst=&mydst=
//	POST /v1/invalidate  ?node=N or ?all=1
//	GET  /v1/status      service counters (also folded into /healthz)
//
// plus the standard observability plane (/healthz, /debug/pprof/, ...).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/comap"
	"repro/internal/frame"
	"repro/internal/mapsvc"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "comap-mapd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		httpAddr  = flag.String("http", ":9090", "listen address for the API and observability plane")
		dataDir   = flag.String("data", "", "persistence directory for snapshot+WAL (empty = in-memory only)")
		regime    = flag.String("regime", "testbed", "verdict model parameters: testbed | ns2")
		shards    = flag.Int("shards", 0, "fix-table and verdict-cache shard count (0 = default)")
		snapEvery = flag.Int("snapshot-every", 0, "WAL records between snapshots (0 = default, negative disables)")
		widen     = flag.Float64("widen", 0, "extra error-radius inflation for wide verdicts in meters (0 = default)")
		maxIngest = flag.Int("max-pending-ingest", 0, "concurrently admitted ingest requests before shedding (0 = default)")
		traceOut  = flag.String("trace", "", "write the server-side rpc.srv event stream as JSONL to this file")
	)
	flag.Parse()

	var opts netsim.Options
	switch *regime {
	case "testbed":
		opts = netsim.TestbedOptions()
	case "ns2":
		opts = netsim.NS2Options()
	default:
		return fmt.Errorf("unknown -regime %q (want testbed or ns2)", *regime)
	}

	start := time.Now()
	cfg := mapsvc.ServiceConfig{
		// Health gating stays off (Now nil): standalone ingest streams carry
		// the producers' timestamps, which need not share an epoch with this
		// process's clock.
		Judge:         comap.Judge{Model: opts.ComapModel, Rates: opts.PHY.Rates},
		WidenMeters:   *widen,
		Shards:        *shards,
		SnapshotEvery: *snapEvery,
		Now:           func() time.Duration { return time.Since(start) },
	}
	var store *mapsvc.DirStore
	if *dataDir != "" {
		var err error
		store, err = mapsvc.NewDirStore(*dataDir)
		if err != nil {
			return err
		}
		cfg.Store = store
	}
	svc := mapsvc.NewService(cfg)

	// The server-side structured event stream: admissions, sheds, verdict
	// hits/misses, invalidations, epoch bumps and WAL replays as JSONL
	// trace events stamped with this process's monotonic clock. Handlers
	// run concurrently, so the writer is mutex-guarded.
	var traceW *trace.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		defer func() {
			bw.Flush()
			f.Close()
		}()
		traceW = trace.NewWriter(bw)
		var traceMu sync.Mutex
		svc.SetEvents(func(e trace.Event) {
			e.AtMicros = int64(time.Since(start) / time.Microsecond)
			e.Node = frame.Broadcast
			traceMu.Lock()
			traceW.Record(e)
			traceMu.Unlock()
		})
	}

	// Wall-clock SLO tracking over every API endpoint, surfaced in
	// /v1/status and the obs plane's /slo.
	tracker := slo.NewTracker(func() time.Duration { return time.Since(start) }, slo.DefaultObjectives()...)

	// Recover is a no-op replay on a fresh (or memory-only) store and a full
	// snapshot+WAL rebuild after a kill.
	if err := svc.Recover(); err != nil {
		return fmt.Errorf("recovering from %s: %w", *dataDir, err)
	}
	st := svc.Status()
	fmt.Printf("comap-mapd: recovered %d fixes (%d WAL records replayed), epoch %d\n",
		st.Fixes, st.WALReplayed, st.Epoch)

	admin := obs.NewServer(obs.Options{})
	admin.AddHealth("mapd", func() (string, any) {
		st := svc.Status()
		if st.Down {
			return "degraded", st
		}
		return "ok", st
	})
	admin.AddSLO("mapd", tracker.Status)
	admin.Handle("/v1/", mapsvc.NewHTTPHandler(svc, *maxIngest, tracker))
	addr, err := admin.Start(*httpAddr)
	if err != nil {
		return err
	}
	defer admin.Close()
	fmt.Printf("comap-mapd: serving on http://%s (API under /v1/, health on /healthz)\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("comap-mapd: %v — snapshotting and shutting down\n", s)
	if traceW != nil && traceW.Err() != nil {
		fmt.Fprintln(os.Stderr, "comap-mapd: trace write error:", traceW.Err())
	}
	if store != nil {
		if err := svc.Snapshot(); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		if err := store.Close(); err != nil {
			return err
		}
	}
	return nil
}
