package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/mapsvc"
)

// buildMapd compiles the comap-mapd binary once into a temp dir.
func buildMapd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "comap-mapd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// chaosDataDir returns the daemon's data directory for a test: a throwaway
// TempDir normally, or a kept directory under $MAPD_CHAOS_DIR so CI can
// archive the snapshot/WAL files of a failed run.
func chaosDataDir(t *testing.T) string {
	t.Helper()
	parent := os.Getenv("MAPD_CHAOS_DIR")
	if parent == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(parent, 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(parent, strings.ReplaceAll(t.Name(), "/", "-")+"-")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// mapd is one running comap-mapd process and its parsed listen address.
type mapd struct {
	cmd  *exec.Cmd
	addr string
}

// startMapd launches the daemon on an ephemeral port and waits for the
// "serving on" line to learn the bound address.
func startMapd(t *testing.T, bin, dataDir string) *mapd {
	t.Helper()
	cmd := exec.Command(bin, "-data", dataDir, "-http", "127.0.0.1:0")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "comap-mapd: serving on http://"); ok {
				addrCh <- strings.Fields(rest)[0]
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &mapd{cmd: cmd, addr: addr}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("comap-mapd did not report its listen address")
		return nil
	}
}

func (m *mapd) url(path string) string { return "http://" + m.addr + path }

func (m *mapd) status(t *testing.T) mapsvc.ServiceStatus {
	t.Helper()
	resp, err := http.Get(m.url("/v1/status"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/status = %s", resp.Status)
	}
	var st mapsvc.ServiceStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// testRecords is a small topology: four stations with committed fixes.
func testRecords() []mapsvc.IngestRecord {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0, 10), geom.Pt(300, 0), geom.Pt(300, 10), geom.Pt(150, 5)}
	recs := make([]mapsvc.IngestRecord, 0, len(pts))
	for i, p := range pts {
		recs = append(recs, mapsvc.IngestRecord{
			Op:   mapsvc.RecReport,
			Node: frame.NodeID(i + 1),
			Fix:  loc.Fix{Pos: p, ReportedAt: time.Second, ErrorRadiusMeters: 1},
		})
	}
	return recs
}

// TestKillRestartRecovers is the crash-safety contract end to end: ingest
// into a live daemon, SIGKILL it (no graceful snapshot), restart on the same
// data directory, and require the registry back via WAL replay with verdicts
// served from the recovered state.
func TestKillRestartRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildMapd(t)
	dataDir := chaosDataDir(t)
	recs := testRecords()

	m := startMapd(t, bin, dataDir)
	resp, err := http.Post(m.url("/v1/ingest"), "application/octet-stream",
		bytes.NewReader(mapsvc.EncodeRecords(recs)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/ingest = %s", resp.Status)
	}
	st := m.status(t)
	if st.Fixes != int64(len(recs)) || st.WALRecords != int64(len(recs)) {
		t.Fatalf("pre-kill status: fixes=%d wal_records=%d, want %d", st.Fixes, st.WALRecords, len(recs))
	}

	// SIGKILL: no snapshot, no WAL truncation — the durable state is
	// exactly the appended log.
	if err := m.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	m.cmd.Wait()

	m2 := startMapd(t, bin, dataDir)
	defer func() {
		m2.cmd.Process.Kill()
		m2.cmd.Wait()
	}()
	st2 := m2.status(t)
	if st2.Fixes != int64(len(recs)) {
		t.Errorf("post-restart fixes = %d, want %d", st2.Fixes, len(recs))
	}
	if st2.WALReplayed != int64(len(recs)) {
		t.Errorf("post-restart wal_replayed = %d, want %d", st2.WALReplayed, len(recs))
	}
	if st2.Recoveries != 1 {
		t.Errorf("post-restart recoveries = %d, want 1", st2.Recoveries)
	}

	// The recovered registry must serve verdicts immediately.
	vr, err := http.Get(m2.url("/v1/verdict?obs=3&src=1&dst=2&mydst=4"))
	if err != nil {
		t.Fatal(err)
	}
	defer vr.Body.Close()
	if vr.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/verdict = %s", vr.Status)
	}
	var vres struct {
		Verdict mapsvc.Verdict `json:"verdict"`
		Epoch   uint64         `json:"epoch"`
	}
	if err := json.NewDecoder(vr.Body).Decode(&vres); err != nil {
		t.Fatal(err)
	}
	if vres.Epoch != st2.Epoch {
		t.Errorf("verdict epoch = %d, status epoch = %d", vres.Epoch, st2.Epoch)
	}
	if vres.Verdict.Unhealthy {
		t.Error("verdict unhealthy with all fixes present and health gating off")
	}

	// Health plane reflects the service.
	hr, err := http.Get(m2.url("/healthz"))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %s", hr.Status)
	}
}

// TestGracefulShutdownSnapshots checks SIGTERM takes a final snapshot and
// truncates the WAL, so the next start replays zero WAL records.
func TestGracefulShutdownSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildMapd(t)
	dataDir := chaosDataDir(t)
	recs := testRecords()

	m := startMapd(t, bin, dataDir)
	resp, err := http.Post(m.url("/v1/ingest"), "application/octet-stream",
		bytes.NewReader(mapsvc.EncodeRecords(recs)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := m.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := m.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exit: %v", err)
	}
	snap, err := os.Stat(filepath.Join(dataDir, "snapshot.dat"))
	if err != nil {
		t.Fatalf("no snapshot after SIGTERM: %v", err)
	}
	if snap.Size() == 0 {
		t.Error("empty snapshot")
	}

	m2 := startMapd(t, bin, dataDir)
	defer func() {
		m2.cmd.Process.Kill()
		m2.cmd.Wait()
	}()
	st := m2.status(t)
	if st.Fixes != int64(len(recs)) {
		t.Errorf("post-restart fixes = %d, want %d", st.Fixes, len(recs))
	}
	if st.WALReplayed != 0 {
		t.Errorf("post-restart wal_replayed = %d, want 0 (snapshot covers all)", st.WALReplayed)
	}
}

// TestBadRegimeFails locks the fail-fast flag contract of the daemon.
func TestBadRegimeFails(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	bin := buildMapd(t)
	out, err := exec.Command(bin, "-regime", "bogus").CombinedOutput()
	if err == nil {
		t.Fatalf("bad -regime accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "-regime") && !strings.Contains(string(out), "regime") {
		t.Errorf("error does not name the flag: %s", out)
	}
}
