// Exposed-terminal walkthrough: uses the CO-MAP analysis layer directly —
// neighbor positions, the PRR table of Fig. 5, concurrency validation and
// the co-occurrence map — then confirms the verdicts in the full simulator.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/comap"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/topology"
)

func main() {
	// Reconstruct the paper's Fig. 3/5 reasoning: node C2 wants to know
	// whether it may transmit to AP2 while C1 is talking to AP1.
	positions := loc.Static{
		topology.C1:  geom.Pt(8, 0),
		topology.AP1: geom.Pt(0, 0),
		topology.C2:  geom.Pt(30, 0),
		topology.AP2: geom.Pt(36, 0),
	}
	model := comap.Model{
		Prop:           radio.NewLogNormal2400(2.9, 4), // office: alpha 2.9, sigma 4 dB
		TxPowerDBm:     0,
		TSIRdB:         4,   // lowest-rate SIR threshold
		TPRR:           0.8, // required packet reception ratio
		TcsDBm:         -81, // carrier-sense threshold
		CSMissProb:     0.9, // hidden-terminal cut-off
		SensitivityDBm: -94,
	}

	// Step 1: the PRR table — mutual impact of C2's link and C1's link.
	agent := comap.NewAgent(topology.C2, model, positions)
	entries := model.PRRTable(positions, topology.C2, topology.AP2,
		[]comap.Link{{Src: topology.C1, Dst: topology.AP1}})
	for _, e := range entries {
		fmt.Printf("PRR of C1->AP1 if C2 transmits: %.3f\n", e.PRROfOngoing)
		fmt.Printf("PRR of C2->AP2 if C1 transmits: %.3f\n", e.PRROfMine)
	}

	// Step 2: concurrency validation populates the co-occurrence map lazily.
	allowed := agent.Allowed(topology.C1, topology.AP1, topology.AP2)
	fmt.Printf("co-occurrence verdict for concurrent transmission: %v\n", allowed)
	fmt.Printf("co-occurrence map now holds %d entr(y/ies)\n\n", agent.Map().Len())

	// Step 3: the same geometry end-to-end in the simulator.
	top := topology.ETSweep(30)
	for _, proto := range []netsim.Protocol{netsim.ProtocolDCF, netsim.ProtocolComap} {
		opts := netsim.TestbedOptions()
		opts.Protocol = proto
		opts.Seed = 7
		opts.Duration = 3 * time.Second
		n, err := netsim.Build(top, opts)
		if err != nil {
			log.Fatal(err)
		}
		res := n.Run()
		conc := int64(0)
		for _, st := range n.Stations {
			conc += st.MAC.Stats().Get("et.concurrent_tx")
		}
		fmt.Printf("%-7v total %5.2f Mbps, %4d concurrent transmissions\n",
			proto, res.Total()/1e6, conc)
	}
	_ = frame.Broadcast // keep the import explicit for readers exploring the API
}
