// Mesh: the paper's §VII outlook — "the models and techniques developed in
// this paper can also be applied to stationary wireless mesh networks where
// the locations of mesh stations are prior knowledge". This example builds a
// four-hop mesh chain (the paper's planned wind/water-monitoring backhaul)
// where alternating links could run concurrently but plain CSMA serializes
// three of the four, and shows CO-MAP recovering the spatial reuse.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func main() {
	// Two short mesh hops flowing outward from the middle of the backhaul:
	// senders 2 and 3 sit 60 m apart (inside each other's ≈66 m CS range,
	// so plain CSMA serializes them most of the time), while the receivers
	// 1 and 4 sit at the outer ends, 72 m from the foreign sender — far
	// enough that the links are SIR-safe concurrently (classic exposed
	// pair). All positions are construction-time knowledge, as the paper
	// assumes for mesh stations.
	top := topology.Topology{
		Name: "mesh-backhaul",
		Nodes: []topology.Node{
			{ID: 1, Pos: geom.Pt(-12, 0)},
			{ID: 2, Pos: geom.Pt(0, 0)},
			{ID: 3, Pos: geom.Pt(60, 0)},
			{ID: 4, Pos: geom.Pt(72, 0)},
		},
		Flows: []topology.Flow{
			{Src: 2, Dst: 1},
			{Src: 3, Dst: 4},
		},
	}
	if err := top.Validate(); err != nil {
		log.Fatal(err)
	}

	for _, proto := range []netsim.Protocol{netsim.ProtocolDCF, netsim.ProtocolComap} {
		opts := netsim.NS2Options() // 6 Mbps fixed rate, 20 dBm, Table I radio
		opts.Protocol = proto
		opts.Seed = 4
		opts.Duration = 4 * time.Second

		n, err := netsim.Build(top, opts)
		if err != nil {
			log.Fatal(err)
		}
		res := n.Run()
		conc := int64(0)
		for _, st := range n.Stations {
			conc += st.MAC.Stats().Get("et.concurrent_tx")
		}
		fmt.Printf("%-7v link 2->1 %5.2f Mbps, link 3->4 %5.2f Mbps, total %5.2f (%d concurrent tx)\n",
			proto,
			res.Goodput(top.Flows[0])/1e6,
			res.Goodput(top.Flows[1])/1e6,
			res.Total()/1e6, conc)
	}
	fmt.Println("\nMesh stations know their positions by construction, so CO-MAP's")
	fmt.Println("co-occurrence map lets the 2->1 and 3->4 hops run concurrently.")
}
