// Hidden-terminal walkthrough: counts the hidden terminals of a link from
// positions (paper §IV-D1), consults the analytical adaptation table for the
// goodput-optimal (contention window, packet size), and shows the effect in
// the simulator.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bianchi"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/topology"
)

func main() {
	// Three clients of a neighbouring AP act as hidden terminals of the
	// measured C1->AP1 link.
	top := topology.HTRoles([]topology.Role{
		topology.RoleHidden, topology.RoleHidden, topology.RoleHidden,
	})

	// The analytical model: optimal settings per (hidden, contenders).
	base := bianchi.FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	table := bianchi.NewAdaptationTable(base, 5, 8, nil, nil)
	for h := 0; h <= 3; h++ {
		s := table.Lookup(h, 0)
		fmt.Printf("h=%d hidden terminals -> CW %4d slots, payload %4d B (model: %.2f Mbps)\n",
			h, s.W, s.PayloadBytes, s.GoodputBps/1e6)
	}
	fmt.Println()

	run := func(name string, opts netsim.Options) float64 {
		opts.Seed = 11
		opts.Duration = 4 * time.Second
		n, err := netsim.Build(top, opts)
		if err != nil {
			log.Fatal(err)
		}
		res := n.Run()
		g := res.Goodput(topology.Flow{Src: topology.C1, Dst: topology.AP1})
		timeouts := n.Stations[topology.C1].MAC.Stats().Get("ack.timeout")
		sent := n.Stations[topology.C1].MAC.Stats().Get("tx.data")
		fmt.Printf("%-28s C1->AP1 %6.3f Mbps  (%d/%d transmissions timed out)\n",
			name, g/1e6, timeouts, sent)
		return g
	}

	dcf := netsim.NS2Options()
	dcf.Protocol = netsim.ProtocolDCF
	gDCF := run("basic DCF", dcf)

	cm := netsim.NS2Options()
	cm.Protocol = netsim.ProtocolComap
	cm.AdaptTable = table
	gCM := run("CO-MAP (adaptive CW+size)", cm)

	if gDCF > 0 {
		fmt.Printf("\nCO-MAP/DCF goodput ratio under 3 hidden terminals: %.2fx\n", gCM/gDCF)
	}
	_ = frame.Broadcast
}
