// Quickstart: build a two-link WLAN, run it under basic DCF and under
// CO-MAP, and compare goodput. This is the smallest end-to-end use of the
// library's public surface: topology -> options -> RunScenario.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/netsim"
	"repro/internal/topology"
)

func main() {
	// The classic exposed-terminal square: C1->AP1 and C2->AP2 can coexist,
	// but plain carrier sense serializes them.
	top := topology.ETSweep(30)

	for _, proto := range []netsim.Protocol{netsim.ProtocolDCF, netsim.ProtocolComap} {
		opts := netsim.TestbedOptions() // 802.11b, 0 dBm, Minstrel, office radio
		opts.Protocol = proto
		opts.Seed = 42
		opts.Duration = 3 * time.Second

		res, err := netsim.RunScenario(top, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7v total %5.2f Mbps  (C1->AP1 %5.2f, C2->AP2 %5.2f)\n",
			proto, res.Total()/1e6,
			res.Goodput(top.Flows[0])/1e6, res.Goodput(top.Flows[1])/1e6)
	}
	fmt.Println("\nCO-MAP detects the exposed terminal from node positions and lets")
	fmt.Println("both links transmit concurrently; basic DCF serializes them.")
}
