// Mobility and noisy localization: a client walks across the floor while
// its reported position carries GPS-like error; the location registry only
// re-reports after significant movement (the paper's update-threshold rule),
// and the CO-MAP agent's verdicts change as the geometry changes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/comap"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/topology"
)

func main() {
	const errorRange = 5.0 // meters of localization error
	registry := loc.NewRegistry(rand.New(rand.NewSource(1)), errorRange, errorRange/2)

	// Static infrastructure.
	registry.Register(topology.AP1, geom.Pt(0, 0))
	registry.Register(topology.AP2, geom.Pt(36, 0))
	registry.Register(topology.C1, geom.Pt(8, 0))
	// The mobile client starts next to AP1.
	registry.Register(topology.C2, geom.Pt(12, 0))

	model := comap.Model{
		Prop:           radio.NewLogNormal2400(2.9, 4),
		TxPowerDBm:     0,
		TSIRdB:         4,
		TPRR:           0.8,
		TcsDBm:         -81,
		CSMissProb:     0.9,
		SensitivityDBm: -94,
	}
	agent := comap.NewAgent(topology.C2, model, registry)

	fmt.Printf("%-10s %-14s %-14s %-8s %s\n",
		"true x", "reported", "updates", "verdict", "note")
	for x := 12.0; x <= 36; x += 2 {
		registry.Move(topology.C2, geom.Pt(x, 0))
		// Position updates invalidate the lazily built co-occurrence map.
		agent.OnPositionsChanged()
		allowed := agent.Allowed(topology.C1, topology.AP1, topology.AP2)

		reported, _ := registry.Position(topology.C2)
		note := ""
		if allowed {
			note = "exposed terminal: concurrent transmission enabled"
		}
		fmt.Printf("%-10.0f %-14s %-14d %-8v %s\n",
			x, reported, registry.Updates(), allowed, note)
	}

	fmt.Printf("\ntotal position reports: %d (movement threshold %.1f m keeps overhead low)\n",
		registry.Updates(), errorRange/2)

	// Part two: the same walk end-to-end in the simulator. C2 strolls from
	// the unsafe zone into the exposed-terminal region while both links
	// carry saturated traffic; CO-MAP picks up the concurrency as the
	// reported positions change.
	fmt.Println("\n--- end-to-end walk (12 s simulated) ---")
	top := topology.ETSweep(16)
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolComap
	opts.Seed = 3
	opts.Duration = 12 * time.Second
	opts.PositionErrorMeters = errorRange
	n, err := netsim.Build(top, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := n.ScheduleWalk(topology.C2, geom.Pt(32, 0), 1.5, 0); err != nil {
		log.Fatal(err)
	}
	res := n.Run()
	conc := n.Stations[topology.C1].MAC.Stats().Get("et.concurrent_tx") +
		n.Stations[topology.C2].MAC.Stats().Get("et.concurrent_tx")
	fmt.Printf("aggregate goodput %.2f Mbps, %d concurrent transmissions,\n",
		res.Total()/1e6, conc)
	fmt.Printf("%d position reports issued during the walk\n", n.Locs.Updates())
}
