// Benchmarks: one target per table/figure of the paper's evaluation, plus
// ablations of CO-MAP's design choices and micro-benchmarks of the hot
// paths. Each figure bench runs a scaled-down version of the corresponding
// experiment (cmd/comap-experiments regenerates the full data) and reports
// domain metrics (goodput, gain) alongside ns/op.
package main

import (
	"testing"
	"time"

	"repro/internal/bianchi"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/topology"
)

// benchOpts is the per-iteration experiment scale used by the figure
// benchmarks.
func benchOpts() experiments.Opts {
	return experiments.Opts{Seeds: 1, Duration: 500 * time.Millisecond, Topologies: 2}
}

func BenchmarkFig1ExposedTerminalSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.C1Goodput.Points[len(res.C1Goodput.Points)-1].Y, "far_Mbps")
		}
	}
}

func BenchmarkFig2HiddenTerminalPayload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := len(res.NoHT.Points) - 1
			b.ReportMetric(res.NoHT.Points[last].Y, "noHT_Mbps")
			b.ReportMetric(res.OneHT.Points[last].Y, "oneHT_Mbps")
		}
	}
}

func BenchmarkFig7ModelValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Report the h=0, W=63, max-payload model/sim pair.
			m := panels[0].Model[0].Points
			s := panels[0].Sim[0].Points
			b.ReportMetric(m[len(m)-1].Y, "model_Mbps")
			b.ReportMetric(s[len(s)-1].Y, "sim_Mbps")
		}
	}
}

func BenchmarkFig8ComapExposedTerminal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.ETRegionGainPct, "gain_pct")
		}
	}
}

func BenchmarkFig9ComapHiddenTerminal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MeanGainPct, "gain_pct")
		}
	}
}

func BenchmarkFig10LargeScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.GainPerfectPct, "gain_pct")
			b.ReportMetric(res.GainErrorPct, "gain_err_pct")
		}
	}
}

func BenchmarkTableIAdaptationTable(b *testing.B) {
	base := bianchi.FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := bianchi.NewAdaptationTable(base, 5, 8, nil, nil)
		if tbl.Lookup(3, 5).GoodputBps <= 0 {
			b.Fatal("empty table entry")
		}
	}
}

// --- ablations of CO-MAP design choices (see DESIGN.md) -------------------

// runET runs the ET scenario at 30 m with the given option mutator and
// returns aggregate goodput in Mbps.
func runET(b *testing.B, mutate func(*netsim.Options)) float64 {
	b.Helper()
	top := topology.ETSweep(30)
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolComap
	opts.Seed = 7
	opts.Duration = time.Second
	if mutate != nil {
		mutate(&opts)
	}
	res, err := netsim.RunScenario(top, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res.Total() / 1e6
}

func BenchmarkAblationHeaderEmbedded(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		g = runET(b, nil) // embedded headers are the default
	}
	b.ReportMetric(g, "Mbps")
}

func BenchmarkAblationHeaderFrame(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		g = runET(b, func(o *netsim.Options) { o.Header = netsim.HeaderFrame })
	}
	b.ReportMetric(g, "Mbps")
}

func BenchmarkAblationDCFBaseline(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		g = runET(b, func(o *netsim.Options) { o.Protocol = netsim.ProtocolDCF })
	}
	b.ReportMetric(g, "Mbps")
}

// --- micro-benchmarks of the hot paths ------------------------------------

func BenchmarkBianchiGoodput(b *testing.B) {
	p := bianchi.FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	p.W = 255
	p.Contenders = 5
	p.Hidden = 3
	for i := 0; i < b.N; i++ {
		if p.Goodput(1000) <= 0 {
			b.Fatal("zero goodput")
		}
	}
}

func BenchmarkSimulatorSecond(b *testing.B) {
	// Cost of simulating one second of the saturated two-link testbed.
	top := topology.ETSweep(30)
	for i := 0; i < b.N; i++ {
		opts := netsim.TestbedOptions()
		opts.Protocol = netsim.ProtocolComap
		opts.Seed = int64(i)
		opts.Duration = time.Second
		if _, err := netsim.RunScenario(top, opts); err != nil {
			b.Fatal(err)
		}
	}
}
