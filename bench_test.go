// Benchmarks: one target per table/figure of the paper's evaluation, plus
// ablations of CO-MAP's design choices and micro-benchmarks of the hot
// paths. The per-iteration bodies live in internal/benchscn so that
// cmd/comap-bench measures exactly the same scenarios; each figure bench
// runs a scaled-down version of the corresponding experiment
// (cmd/comap-experiments regenerates the full data) and reports domain
// metrics (goodput, gain) alongside ns/op.
package main

import (
	"sort"
	"testing"

	"repro/internal/benchscn"
)

// benchScenario runs the named benchscn scenario at the default scale and
// reports its domain metrics from the first iteration.
func benchScenario(b *testing.B, name string) {
	b.Helper()
	scn, ok := benchscn.Lookup(name)
	if !ok {
		b.Fatalf("unknown bench scenario %q", name)
	}
	run, err := scn.Prepare(benchscn.Default())
	if err != nil {
		b.Fatal(err)
	}
	var first benchscn.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first = m
		}
	}
	b.StopTimer()
	keys := make([]string, 0, len(first))
	for k := range first {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.ReportMetric(first[k], k)
	}
}

func BenchmarkFig1ExposedTerminalSweep(b *testing.B) {
	benchScenario(b, "fig1-exposed-terminal-sweep")
}

func BenchmarkFig2HiddenTerminalPayload(b *testing.B) {
	benchScenario(b, "fig2-hidden-terminal-payload")
}

func BenchmarkFig7ModelValidation(b *testing.B) {
	benchScenario(b, "fig7-model-validation")
}

func BenchmarkFig8ComapExposedTerminal(b *testing.B) {
	benchScenario(b, "fig8-comap-exposed-terminal")
}

func BenchmarkFig9ComapHiddenTerminal(b *testing.B) {
	benchScenario(b, "fig9-comap-hidden-terminal")
}

func BenchmarkFig10LargeScale(b *testing.B) {
	benchScenario(b, "fig10-large-scale")
}

func BenchmarkTableIAdaptationTable(b *testing.B) {
	benchScenario(b, "table1-adaptation-table")
}

// --- ablations of CO-MAP design choices (see DESIGN.md) -------------------

func BenchmarkAblationHeaderEmbedded(b *testing.B) {
	benchScenario(b, "ablation-header-embedded")
}

func BenchmarkAblationHeaderFrame(b *testing.B) {
	benchScenario(b, "ablation-header-frame")
}

func BenchmarkAblationDCFBaseline(b *testing.B) {
	benchScenario(b, "ablation-dcf-baseline")
}

// --- micro-benchmarks of the hot paths ------------------------------------

func BenchmarkBianchiGoodput(b *testing.B) {
	benchScenario(b, "bianchi-goodput")
}

func BenchmarkSimulatorSecond(b *testing.B) {
	benchScenario(b, "simulator-second")
}

// --- control-plane service load -------------------------------------------

func BenchmarkMapsvcIngest(b *testing.B) {
	benchScenario(b, "mapsvc-ingest")
}

// --- city-scale sharded channel -------------------------------------------
// events_per_sec across the three station counts is the scaling evidence for
// the spatial-cell shard: near-flat per-event cost instead of the dense
// model's quadratic growth.

func BenchmarkCityScaleN100(b *testing.B) {
	benchScenario(b, "cityscale-n100")
}

func BenchmarkCityScaleN300(b *testing.B) {
	benchScenario(b, "cityscale-n300")
}

func BenchmarkCityScaleN1000(b *testing.B) {
	benchScenario(b, "cityscale-n1000")
}
